"""The mapping session object: compiled specs plus caches shared across runs.

A :class:`MappingEngine` owns one :class:`~repro.core.mapping.UnifiedMapper`
(one operating point + algorithm configuration) and the caches that let the
rest of the system evaluate the same specification many times without
re-deriving anything:

* **spec cache** — ``UseCaseSet`` → :class:`~repro.core.spec.CompiledSpec`
  (compiling freezes the set, so a hit can never be stale);
* **requirement cache** — (spec hash, resolved grouping) →
  ``GroupRequirement``/``_Worklist`` bundle, shared by every refinement
  candidate, worst-case mesh attempt and sweep point;
* **evaluation cache** — (group, endpoint-placement projection) → the
  group's flow allocations, which makes repeated fixed-placement
  evaluations (the annealing/tabu inner loop) hit instead of re-mapping;
* **result cache** — (spec hash, grouping, method) → ``MappingResult`` for
  full mapping runs, shared by sweeps that revisit a design.

Engines are cheap to create; use :meth:`with_params` to derive a sibling at
a different operating point that *shares* the params-independent spec and
requirement caches (the frequency searches lean on this).

The result and evaluation caches are also *portable*:
:meth:`export_results` / :meth:`import_results` and
:meth:`export_evaluations` / :meth:`import_evaluations` serialise what an
engine computed, and :meth:`attach_store` points an engine at an on-disk
:class:`~repro.jobs.store.EngineStateStore` it reads keyed on cache misses
— the jobs layer uses this to warm-start every execution from what sibling
runs already computed (:meth:`cache_info` documents the counters that
prove it).

Everything the engine returns is bit-identical to driving
:class:`UnifiedMapper` directly — caches (including imported and
store-read state) only ever short-circuit deterministic recomputation.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple, Union

from repro.core.mapping import (
    GroupRequirement,
    GroupSpec,
    PairPlacement,
    UnifiedMapper,
    _Worklist,
)
from repro.core.result import MappingResult, UseCaseConfiguration
from repro.core.spec import CompiledSpec, compile_spec
from repro.core.switching import SwitchingGraph
from repro.core.usecase import UseCaseSet
from repro.exceptions import MappingError, ReproError
from repro.noc.slot_table import rotated_start_slots
from repro.noc.topology import Topology
from repro.params import MapperConfig, NoCParameters

__all__ = ["MappingEngine"]

SpecLike = Union[UseCaseSet, CompiledSpec]

#: sentinel distinguishing "no seed entry" from a cached infeasibility (None)
_MISSING = object()


class _RequirementBundle:
    """Everything derived from (spec, grouping) that mapping runs share."""

    __slots__ = (
        "requirements",
        "worklist",
        "order",
        "group_plans",
        "group_endpoints",
        "spec_core_names",
        "spec_hash",
        "groups_key",
    )

    def __init__(self, spec: CompiledSpec, resolved: Tuple[FrozenSet[str], ...]) -> None:
        self.spec_core_names = spec.core_names
        #: content identity of this bundle, for serialisable evaluation keys
        #: (the in-memory caches key on object identity instead)
        self.spec_hash = spec.spec_hash
        self.groups_key: Tuple[Tuple[str, ...], ...] = tuple(
            tuple(sorted(group)) for group in resolved
        )
        compiled_groups = spec.groups_for(resolved)
        self.requirements: Tuple[GroupRequirement, ...] = tuple(
            GroupRequirement.from_compiled(group) for group in compiled_groups
        )
        self.worklist = _Worklist(self.requirements)
        #: global fixed-placement processing order (see _Worklist)
        self.order = self.worklist.placement_sequence()
        #: per group: its slice of ``order``, each requirement paired with
        #: the (member name, member flow) records to emit for it
        self.group_plans: Dict[int, List] = {req.group_id: [] for req in self.requirements}
        by_group = {req.group_id: req for req in self.requirements}
        for pair_req in self.order:
            requirement = by_group[pair_req.group_id]
            members = tuple(
                (member.name, flow)
                for member in requirement.members
                for flow in (member.flow_between(pair_req.source, pair_req.destination),)
                if flow is not None
            )
            self.group_plans[pair_req.group_id].append((pair_req, members))
        #: per group: the cores whose placement its evaluation depends on,
        #: as indices into the spec's interned core table (compact cache keys)
        self.group_endpoints: Dict[int, Tuple[int, ...]] = {
            group.group_id: tuple(spec.core_index[name] for name in group.endpoints)
            for group in compiled_groups
        }


def _outcome_to_doc(outcome: Optional[List[PairPlacement]]) -> Optional[str]:
    """Serialise one cached group evaluation (``None`` = cached infeasibility).

    Only the mapper's irreducible *decisions* are stored — the switch path
    and the starting TDMA slots of each aggregated pair.  Everything else a
    :class:`PairPlacement` carries is derivable: ``evaluate_group_fixed``
    emits exactly one entry per plan item, in plan order, with the plan's
    own member records and ``cost_terms = bandwidth × hops`` over them, and
    the Æthereal pipelined slot assignment is the per-hop rotation of the
    starting slots along the path (``ResourceState._plan``'s construction) —
    so the import side reattaches members from the live bundle and
    recomputes terms and per-link slots bit-identically instead of
    round-tripping them.

    The whole outcome packs into **one string** — ``;``-separated pair
    segments of ``path:starts`` dot-separated ints (e.g.
    ``"0.1.2:5.6;3.4:0"``) — so a stored evaluation context deserialises as
    a few hundred JSON strings instead of hundreds of thousands of number
    tokens; :func:`_parse_outcome_doc` unpacks it with C-speed splits.
    """
    if outcome is None:
        return None
    segments = []
    for entry in outcome:
        path = entry.switch_path
        starts: Tuple[int, ...] = ()
        if entry.link_slots:
            starts = entry.link_slots[(path[0], path[1])]
        segments.append(
            ".".join(map(str, path)) + ":" + ".".join(map(str, starts))
        )
    return ";".join(segments)


def _parse_outcome_doc(
    document: str, expected_pairs: int
) -> Optional[List[Tuple[Tuple[int, ...], Tuple[int, ...]]]]:
    """Unpack a packed outcome string into (path, starts) tuples, or ``None``.

    Returns ``None`` for anything that does not parse cleanly into
    ``expected_pairs`` non-empty integer paths — a foreign or corrupt entry
    degrades to a recomputation, never an error.
    """
    if not isinstance(document, str):
        return None
    pairs: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = []
    try:
        for segment in document.split(";"):
            path_part, _, starts_part = segment.partition(":")
            path = tuple(map(int, path_part.split(".")))
            starts = tuple(map(int, starts_part.split("."))) if starts_part else ()
            pairs.append((path, starts))
    except ValueError:
        return None
    if len(pairs) != expected_pairs:
        return None
    return pairs


def _rotated_slots(
    path: Tuple[int, ...], starts: Tuple[int, ...], size: int
) -> Dict[Tuple[int, int], Tuple[int, ...]]:
    """Per-link slot assignment from the starting slots.

    Hop ``i`` carries the starts rotated by ``i mod size`` — the exact
    tuples ``ResourceState._plan`` builds, via the same shared
    :func:`~repro.noc.slot_table.rotated_start_slots` helper, so imported
    evaluations reproduce the planner's assignments structurally.
    """
    if not starts or len(path) < 2:
        return {}
    assignment: Dict[Tuple[int, int], Tuple[int, ...]] = {}
    for hop in range(len(path) - 1):
        link = (path[hop], path[hop + 1])
        assignment[link] = rotated_start_slots(starts, hop % size, size)
    return assignment


def _outcome_from_pairs(
    pairs: List[Tuple[Tuple[int, ...], Tuple[int, ...]]],
    plan: List,
    slot_table_size: int,
) -> List[PairPlacement]:
    """Rebuild one group evaluation against its bundle's plan (see above).

    ``pairs`` is :func:`_parse_outcome_doc` output (already validated
    against the plan length); ``plan`` is the bundle's ``group_plans``
    slice for the group — members are taken from it by position (they are
    the *same* objects a cold evaluation would use) and cost terms /
    per-link slots are recomputed with the exact operations the cold path
    performs.
    """
    outcome: List[PairPlacement] = []
    for (path, starts), (_pair_req, members) in zip(pairs, plan):
        hops = len(path) - 1
        outcome.append(
            PairPlacement(
                members=members,
                switch_path=path,
                link_slots=_rotated_slots(path, starts, slot_table_size),
                cost_terms=tuple(flow.bandwidth * hops for _name, flow in members),
            )
        )
    return outcome


class _GroupOutcome:
    """One group's feasible fixed-placement evaluation, possibly imported.

    Wraps either the eagerly computed :class:`PairPlacement` list (a cold
    evaluation) or the serialised document plus its bundle plan (an imported
    one).  Imported entries stay documents until something actually needs
    the live objects — the refiners *screen* hundreds of candidates through
    :meth:`MappingEngine.placement_cost`, which only needs the per-use-case
    cost sums :meth:`name_sums` derives with plain float arithmetic, and
    *materialise* only accepted moves (:attr:`entries`).

    ``name_sums`` is memoised per outcome, so revisited candidates skip the
    accumulation entirely — computed and imported evaluations alike.
    """

    __slots__ = ("_entries", "_doc", "_plan", "_size", "_sums")

    def __init__(self, entries=None, doc=None, plan=None, size=0):
        self._entries = entries
        self._doc = doc
        self._plan = plan
        self._size = size
        self._sums = None

    @property
    def entries(self) -> List[PairPlacement]:
        """The live placement list (imported documents rebuild on first use)."""
        cached = self._entries
        if cached is None:
            cached = _outcome_from_pairs(self._doc, self._plan, self._size)
            self._entries = cached
        return cached

    def name_sums(self, member_names) -> Tuple[float, ...]:
        """Per-member-use-case cost sums, in ``member_names`` order.

        Replicates the historical global walk's accumulation exactly: each
        name starts at integer ``0`` and adds its ``bandwidth × hops`` terms
        in plan order (every use case belongs to exactly one group, so the
        interleaved global walk performed precisely these additions for it).
        """
        cached = self._sums
        if cached is not None:
            return cached
        sums: Dict[str, float] = {name: 0 for name in member_names}
        entries = self._entries
        if entries is not None:
            for entry in entries:
                terms = entry.cost_terms
                members = entry.members
                for position in range(len(terms)):
                    name = members[position][0]
                    sums[name] = sums[name] + terms[position]
        else:
            # Imported document: the terms are bandwidth × hops over the
            # plan's member flows — same floats the cold path produces,
            # without building any PairPlacement.
            for (path, _starts), (_pair_req, members) in zip(
                self._doc, self._plan
            ):
                hops = len(path) - 1
                for name, flow in members:
                    sums[name] = sums[name] + flow.bandwidth * hops
        cached = tuple(sums[name] for name in member_names)
        self._sums = cached
        return cached


class MappingEngine:
    """Session object owning compiled specs and cross-run mapping caches."""

    #: bound on cached fixed-placement group evaluations (LRU)
    _EVAL_CACHE_SIZE = 8192
    #: bound on cached full mapping results (LRU)
    _RESULT_CACHE_SIZE = 128
    #: bound on cached compiled specs and set-identity fast-path entries (LRU)
    _SPEC_CACHE_SIZE = 256
    #: bound on cached requirement bundles (LRU)
    _BUNDLE_CACHE_SIZE = 64

    def __init__(
        self,
        params: NoCParameters | None = None,
        config: MapperConfig | None = None,
    ) -> None:
        self.params = params or NoCParameters()
        self.config = config or MapperConfig()
        self.mapper = UnifiedMapper(params=self.params, config=self.config)
        #: spec hash -> CompiledSpec (authoritative, params-independent)
        self._specs: "OrderedDict[str, CompiledSpec]" = OrderedDict()
        #: id(UseCaseSet) -> (set, CompiledSpec) fast path; the entry pins
        #: the keyed set so its id cannot be recycled while it exists, and
        #: the identity check guards a key surviving its set
        self._specs_by_id: "OrderedDict[int, Tuple[UseCaseSet, CompiledSpec]]" = (
            OrderedDict()
        )
        #: (spec hash, resolved grouping) -> _RequirementBundle
        self._bundles: "OrderedDict[Tuple[str, Tuple[FrozenSet[str], ...]], _RequirementBundle]" = (
            OrderedDict()
        )
        #: (id(bundle), id(topology), group id, endpoint projection) ->
        #: (bundle, topology, group evaluation | None); the bundle and
        #: topology references pin their ids against recycling
        self._group_evals: "OrderedDict" = OrderedDict()
        #: (spec hash, resolved grouping, method name) -> MappingResult
        self._results: "OrderedDict" = OrderedDict()
        #: spec hash -> compiled worst-case spec (see worst_case)
        self._worst_specs: "OrderedDict[str, CompiledSpec]" = OrderedDict()
        #: exported-result documents offered to this engine (import_results);
        #: shared by reference with with_params siblings so operating-point
        #: probes can index the entries that match *their* params
        self._seed_entries: List[Dict] = []
        #: result-cache key -> raw exported document, for entries matching
        #: this engine's operating point; deserialised lazily on a map()
        #: miss, so a large corpus costs nothing until a job actually needs
        #: one of its mappings
        self._seed_index: Dict = {}
        #: result-cache keys that were materialised from seed entries rather
        #: than computed here; export_results skips them so a seeded engine
        #: never re-exports (and thereby snowballs) the corpus it was fed
        self._imported_keys: set = set()
        #: exported-evaluation documents offered via import_evaluations;
        #: shared by reference with with_params siblings (same discipline as
        #: ``_seed_entries``)
        self._seed_eval_docs: List[Dict] = []
        #: serialisable evaluation key -> raw outcome document, for entries
        #: matching this engine's operating point; consulted (and drained)
        #: on evaluation-cache misses
        self._eval_seed_index: Dict = {}
        #: evaluation keys that were materialised from imports; skipped by
        #: export_evaluations (never-re-export, like ``_imported_keys``)
        self._imported_eval_keys: set = set()
        #: optional EngineStateStore consulted directly on result and
        #: evaluation misses (duck-typed; attach_store documents the API)
        self._store = None
        #: evaluation contexts already fetched from the attached store
        self._store_contexts: set = set()
        #: id(topology) -> (topology, canonical doc, fingerprint); the
        #: topology reference pins its id, params-independent and shared
        #: with siblings
        self._topology_docs: "OrderedDict" = OrderedDict()
        #: lazily computed params/config documents (store key components)
        self._own_docs: Optional[Tuple[Dict, Dict]] = None
        #: cumulative hit/miss/import telemetry, shared with siblings so a
        #: frequency search's probes report into the owning job's stats;
        #: the field meanings are documented in :meth:`cache_info`
        self._counters: Dict[str, int] = {
            "result_hits": 0,
            "result_misses": 0,
            "evaluation_hits": 0,
            "evaluation_misses": 0,
            "imported_results": 0,
            "imported_evaluations": 0,
            "screen_hits": 0,
            "screen_misses": 0,
        }

    # ------------------------------------------------------------------ #
    # compilation and derived-state caches
    # ------------------------------------------------------------------ #
    def compile(self, use_cases: SpecLike) -> CompiledSpec:
        """Compile (and freeze) a use-case set, reusing any cached spec."""
        if isinstance(use_cases, CompiledSpec):
            return use_cases
        entry = self._specs_by_id.get(id(use_cases))
        if entry is not None and entry[0] is use_cases:
            self._specs_by_id.move_to_end(id(use_cases))
            return entry[1]
        spec = compile_spec(use_cases)
        existing = self._specs.get(spec.spec_hash)
        if existing is not None:
            self._specs.move_to_end(spec.spec_hash)
            spec = existing
        else:
            self._specs[spec.spec_hash] = spec
            if len(self._specs) > self._SPEC_CACHE_SIZE:
                self._specs.popitem(last=False)
        self._specs_by_id[id(use_cases)] = (use_cases, spec)
        if len(self._specs_by_id) > self._SPEC_CACHE_SIZE:
            self._specs_by_id.popitem(last=False)
        return spec

    def resolve_groups(
        self,
        spec: CompiledSpec,
        groups: GroupSpec = None,
        switching_graph: Optional[SwitchingGraph] = None,
    ) -> Tuple[FrozenSet[str], ...]:
        """Resolve and validate the smooth-switching grouping for a spec."""
        return self.mapper._resolve_groups(spec, groups, switching_graph)

    def requirements_for(
        self,
        spec: CompiledSpec,
        resolved_groups: Tuple[FrozenSet[str], ...],
    ) -> _RequirementBundle:
        """The cached requirement/worklist bundle of one (spec, grouping)."""
        key = (spec.spec_hash, resolved_groups)
        bundle = self._bundles.get(key)
        if bundle is None:
            bundle = _RequirementBundle(spec, resolved_groups)
            self._bundles[key] = bundle
            if len(self._bundles) > self._BUNDLE_CACHE_SIZE:
                self._bundles.popitem(last=False)
        else:
            self._bundles.move_to_end(key)
        return bundle

    def with_params(
        self,
        params: NoCParameters | None = None,
        config: MapperConfig | None = None,
    ) -> "MappingEngine":
        """A sibling engine at another operating point, sharing spec caches.

        Compiled specs, requirement bundles and worst-case specs are pure
        functions of the specification and are shared by reference; mapping
        results and evaluations (which depend on params/config) are not.
        """
        sibling = MappingEngine(params or self.params, config or self.config)
        sibling._specs = self._specs
        sibling._specs_by_id = self._specs_by_id
        sibling._bundles = self._bundles
        sibling._worst_specs = self._worst_specs
        sibling._counters = self._counters
        sibling._seed_entries = self._seed_entries
        if self._seed_entries:
            sibling._index_seeds(self._seed_entries)
        sibling._seed_eval_docs = self._seed_eval_docs
        if self._seed_eval_docs:
            sibling._index_eval_seeds(self._seed_eval_docs)
        sibling._store = self._store
        sibling._topology_docs = self._topology_docs
        return sibling

    # ------------------------------------------------------------------ #
    # full mapping runs
    # ------------------------------------------------------------------ #
    def map(
        self,
        use_cases: SpecLike,
        groups: GroupSpec = None,
        switching_graph: Optional[SwitchingGraph] = None,
        method_name: str = "unified",
    ) -> MappingResult:
        """Map a design onto the smallest feasible topology (cached).

        Semantically identical to :meth:`UnifiedMapper.map`; repeated calls
        for the same specification, grouping and method return the cached
        result object.
        """
        spec = self.compile(use_cases)
        resolved = self.resolve_groups(spec, groups, switching_graph)
        key = (spec.spec_hash, resolved, method_name)
        cached = self._results.get(key)
        if cached is not None:
            self._results.move_to_end(key)
            self._counters["result_hits"] += 1
            return cached
        seeded = self._materialise_seed(key)
        if seeded is None:
            seeded = self._materialise_store_result(key)
        if seeded is not None:
            self._counters["result_hits"] += 1
            return seeded
        self._counters["result_misses"] += 1
        if self.config.backend == "ilp":
            # The exact backend uses this engine's fixed-placement evaluator
            # (never map()), so there is no recursion; its result lands in
            # the same per-engine cache slot a heuristic run would.
            from repro.optimize.ilp import exact_mapping

            result = exact_mapping(spec, groups=resolved, engine=self)
        else:
            bundle = self.requirements_for(spec, resolved)
            result = self.mapper.map_requirements(
                spec.core_names, bundle.requirements, bundle.worklist, resolved,
                method_name,
            )
        self._results[key] = result
        if len(self._results) > self._RESULT_CACHE_SIZE:
            self._results.popitem(last=False)
        return result

    def map_batch(
        self,
        designs: Iterable[SpecLike],
        groups: GroupSpec = None,
        switching_graph: Optional[SwitchingGraph] = None,
        method_name: str = "unified",
    ) -> List[Optional[MappingResult]]:
        """Map several designs in one pass, sharing every engine cache.

        The batch entry point for sweeps: each design is compiled at most
        once for the whole batch (and across batches on the same engine).
        Designs that cannot be mapped yield ``None`` instead of raising, so
        a sweep row can record the failure the way the paper's figures do.
        """
        results: List[Optional[MappingResult]] = []
        for design in designs:
            try:
                results.append(
                    self.map(design, groups=groups, switching_graph=switching_graph,
                             method_name=method_name)
                )
            except MappingError:
                results.append(None)
        return results

    def worst_case(self, use_cases: SpecLike) -> MappingResult:
        """Map a design with the worst-case baseline method (cached).

        The synthetic worst-case use-case is itself derived (and compiled)
        once per spec hash, so growing-mesh attempts and repeated calls —
        the frequency searches probe many operating points — share one
        compilation.
        """
        from repro.core.worstcase import WORST_CASE_NAME, build_worst_case_use_case

        spec = self.compile(use_cases)
        worst_spec = self._worst_specs.get(spec.spec_hash)
        if worst_spec is None:
            worst = build_worst_case_use_case(spec.use_case_set, name=WORST_CASE_NAME)
            singleton = UseCaseSet([worst], name=f"{spec.name}-worst-case")
            worst_spec = self.compile(singleton)
            self._worst_specs[spec.spec_hash] = worst_spec
            if len(self._worst_specs) > self._SPEC_CACHE_SIZE:
                self._worst_specs.popitem(last=False)
        else:
            self._worst_specs.move_to_end(spec.spec_hash)
        return self.map(worst_spec, method_name="worst_case")

    # ------------------------------------------------------------------ #
    # fixed-placement evaluation (the refinement hot path)
    # ------------------------------------------------------------------ #
    def _evaluate_groups(
        self,
        bundle: _RequirementBundle,
        topology: Topology,
        placement: Mapping[str, int],
        only: Optional[FrozenSet[int]] = None,
    ) -> Dict[int, List]:
        """Evaluate (or recall) every group under a complete placement.

        Validates the placement globally (switch indices exist, switches are
        alive, per-switch core limit holds — mirroring the checks the
        per-state attachments perform in the general path), then evaluates
        each group against the memoised (group, endpoint-placement) cache.
        ``only`` restricts evaluation to a subset of group ids — the repair
        path evaluates just the failure-affected groups and splices the
        untouched groups' baseline allocations back in.  Raises
        :class:`MappingError` when the placement or any evaluated group is
        infeasible.
        """
        limit = self.params.max_cores_per_switch
        occupancy: Dict[int, int] = {}
        for core, switch in placement.items():
            topology.switch(switch)
            if topology.is_switch_down(switch):
                raise MappingError(
                    f"placement puts core {core!r} on failed switch {switch} "
                    f"of {topology.name!r}",
                    largest_topology=topology.name,
                )
            occupancy[switch] = occupancy.get(switch, 0) + 1
            if limit is not None and occupancy[switch] > limit:
                raise MappingError(
                    f"placement is infeasible on topology {topology.name!r}",
                    largest_topology=topology.name,
                )

        core_names = bundle.spec_core_names
        evals = self._group_evals
        outcomes: Dict[int, _GroupOutcome] = {}
        for requirement in bundle.requirements:
            group_id = requirement.group_id
            if only is not None and group_id not in only:
                continue
            projection = tuple(
                placement[core_names[index]]
                for index in bundle.group_endpoints[group_id]
            )
            key = (id(bundle), id(topology), group_id, projection)
            entry = evals.get(key)
            if entry is not None and entry[0] is bundle and entry[1] is topology:
                evals.move_to_end(key)
                self._counters["evaluation_hits"] += 1
                outcome = entry[2]
            else:
                imported = self._imported_evaluation(
                    bundle, topology, group_id, projection
                )
                if imported is not None:
                    self._counters["evaluation_hits"] += 1
                    self._counters["imported_evaluations"] += 1
                    pairs = imported[0]
                    outcome = None if pairs is None else _GroupOutcome(
                        doc=pairs,
                        plan=bundle.group_plans[group_id],
                        size=self.params.slot_table_size,
                    )
                else:
                    self._counters["evaluation_misses"] += 1
                    computed = self.mapper.evaluate_group_fixed(
                        topology, group_id, bundle.group_plans[group_id], placement
                    )
                    outcome = None if computed is None else _GroupOutcome(
                        entries=computed
                    )
                evals[key] = (bundle, topology, outcome)
                if len(evals) > self._EVAL_CACHE_SIZE:
                    evals.popitem(last=False)
            if outcome is None:
                raise MappingError(
                    f"placement is infeasible on topology {topology.name!r}",
                    largest_topology=topology.name,
                )
            outcomes[group_id] = outcome
        return outcomes

    def placement_cost(
        self,
        use_cases: SpecLike,
        topology: Topology,
        placement: Mapping[str, int],
        groups: GroupSpec = None,
        switching_graph: Optional[SwitchingGraph] = None,
    ) -> float:
        """Communication cost (Σ bandwidth × hops) of a complete placement.

        The cost-only twin of :meth:`evaluate_placement`: it runs (or
        recalls) the same per-group evaluations but skips materialising the
        ``MappingResult``, which the refiners only need for *accepted*
        candidates — a subsequent :meth:`evaluate_placement` for the same
        placement hits the evaluation cache and only pays for assembly.
        The float is bit-identical to summing the assembled result.

        Raises :class:`MappingError` when the placement is infeasible.
        """
        spec = self.compile(use_cases)
        resolved = self.resolve_groups(spec, groups, switching_graph)
        if any(name not in placement for name in spec.core_names):
            result = self.mapper.map_with_placement(
                spec.use_case_set, topology, placement, groups=resolved,
                validate=False,
            )
            return sum(
                configuration.total_bandwidth_hops()
                for configuration in result.configurations.values()
            )
        bundle = self.requirements_for(spec, resolved)
        outcomes = self._evaluate_groups(bundle, topology, placement)
        # Sum the per-group memoised per-use-case sums in the exact order
        # the historical global walk summed them: every use case belongs to
        # one group, so its additions were purely intra-group, and the final
        # reduction visited names in requirement/member order.
        values: List[float] = []
        for requirement in bundle.requirements:
            values.extend(
                outcomes[requirement.group_id].name_sums(requirement.member_names)
            )
        return sum(values)

    def screener(
        self,
        use_cases: SpecLike,
        topology: Topology,
        groups: GroupSpec = None,
        switching_graph: Optional[SwitchingGraph] = None,
    ):
        """A :class:`~repro.optimize.screen.CandidateScreen` for one context.

        The batch entry point of the refinement hot path: the returned
        screen is bound to this engine plus the compiled (spec, grouping)
        bundle and topology, answers exact candidate costs through the same
        cache hierarchy as :meth:`placement_cost` (its kernel evaluations
        are admitted to the evaluation cache, so exports, warm starts and
        the final :meth:`evaluate_placement` are unchanged), and batches
        admissibility/lower-bound screening over whole neighbour sets.
        ``screen_hits`` / ``screen_misses`` in :meth:`cache_info` account
        for its traffic.
        """
        from repro.optimize.screen import CandidateScreen

        spec = self.compile(use_cases)
        resolved = self.resolve_groups(spec, groups, switching_graph)
        bundle = self.requirements_for(spec, resolved)
        return CandidateScreen(self, spec, resolved, bundle, topology)

    def _recall_group_outcome(
        self,
        bundle: _RequirementBundle,
        topology: Topology,
        group_id: int,
        projection: Tuple[int, ...],
    ) -> Tuple[bool, Optional[_GroupOutcome]]:
        """Recall one group evaluation without computing it.

        The recall half of :meth:`_evaluate_groups`'s per-requirement body,
        for the screening layer: consult the in-memory evaluation cache,
        then the imported-evaluation index / attached store, with exactly
        the counter increments the unscreened path performs.  Returns
        ``(True, outcome)`` on a hit (``outcome is None`` is a recalled
        infeasibility) and ``(False, None)`` when the key has never been
        evaluated — the screen's kernel computes it then.
        """
        key = (id(bundle), id(topology), group_id, projection)
        evals = self._group_evals
        entry = evals.get(key)
        if entry is not None and entry[0] is bundle and entry[1] is topology:
            evals.move_to_end(key)
            self._counters["evaluation_hits"] += 1
            return True, entry[2]
        imported = self._imported_evaluation(bundle, topology, group_id, projection)
        if imported is None:
            return False, None
        self._counters["evaluation_hits"] += 1
        self._counters["imported_evaluations"] += 1
        pairs = imported[0]
        outcome = None if pairs is None else _GroupOutcome(
            doc=pairs,
            plan=bundle.group_plans[group_id],
            size=self.params.slot_table_size,
        )
        evals[key] = (bundle, topology, outcome)
        if len(evals) > self._EVAL_CACHE_SIZE:
            evals.popitem(last=False)
        return True, outcome

    def _admit_screened_outcome(
        self,
        bundle: _RequirementBundle,
        topology: Topology,
        group_id: int,
        projection: Tuple[int, ...],
        pairs: Optional[List[Tuple[Tuple[int, ...], Tuple[int, ...]]]],
    ) -> Optional[_GroupOutcome]:
        """Admit one screening-kernel evaluation to the evaluation cache.

        ``pairs`` is the kernel's serialised ``(path, starts)`` decision
        list (``None`` = infeasible) — the exact shape imported documents
        parse to, so the cached outcome materialises, exports and costs
        bit-identically to a :meth:`_evaluate_groups` computation of the
        same key.  A kernel evaluation *is* a computed evaluation, so it
        counts as an ``evaluation_miss`` (and as a ``screen_miss``, its
        screening-layer attribution).
        """
        self._counters["evaluation_misses"] += 1
        self._counters["screen_misses"] += 1
        outcome = None if pairs is None else _GroupOutcome(
            doc=pairs,
            plan=bundle.group_plans[group_id],
            size=self.params.slot_table_size,
        )
        evals = self._group_evals
        evals[(id(bundle), id(topology), group_id, projection)] = (
            bundle, topology, outcome,
        )
        if len(evals) > self._EVAL_CACHE_SIZE:
            evals.popitem(last=False)
        return outcome

    @staticmethod
    def _walk_outcomes(
        bundle: _RequirementBundle,
        outcomes: Mapping[int, _GroupOutcome],
        configurations: Dict[str, UseCaseConfiguration],
    ) -> Tuple[float, Dict[str, UseCaseConfiguration]]:
        """Walk group outcomes in the exact global allocation order.

        The assembly loop behind :meth:`evaluate_placement`: per-use-case
        cost sums build up in the order the monolithic path records
        allocations (float addition order is part of the bit-identical
        contract) while the allocations are materialised into
        ``configurations``.  Imported outcomes rebuild their live entries
        here — only *accepted* candidates ever reach this walk.
        Returns the total communication cost and the configurations map.
        """
        cost_sums: Dict[str, float] = {}
        for requirement in bundle.requirements:
            for name in requirement.member_names:
                cost_sums[name] = 0
                configurations[name] = UseCaseConfiguration(
                    name, requirement.group_id
                )
        entry_lists = {gid: outcome.entries for gid, outcome in outcomes.items()}
        cursor: Dict[int, int] = {gid: 0 for gid in outcomes}
        for pair_req in bundle.order:
            group_id = pair_req.group_id
            index = cursor[group_id]
            cursor[group_id] = index + 1
            entry = entry_lists[group_id][index]
            terms = entry.cost_terms
            for position, (name, allocation) in enumerate(entry.allocations()):
                configurations[name].add(allocation)
                cost_sums[name] = cost_sums[name] + terms[position]
        return sum(cost_sums.values()), configurations

    def evaluate_placement(
        self,
        use_cases: SpecLike,
        topology: Topology,
        placement: Mapping[str, int],
        groups: GroupSpec = None,
        switching_graph: Optional[SwitchingGraph] = None,
        method_name: str = "unified-fixed-placement",
    ) -> MappingResult:
        """Map a design onto a fixed topology and complete core placement.

        Drop-in equivalent of :meth:`UnifiedMapper.map_with_placement` for
        placements that cover every core of the design (the refinement
        passes always do): each configuration group is evaluated
        independently against its cached requirement sequence, and the
        evaluation is memoised on the placement of the group's endpoint
        cores — unchanged groups and revisited placements are free.
        Placements that leave cores unmapped fall back to the general path.

        Raises :class:`MappingError` when the placement is infeasible.
        """
        spec = self.compile(use_cases)
        resolved = self.resolve_groups(spec, groups, switching_graph)
        if any(name not in placement for name in spec.core_names):
            return self.mapper.map_with_placement(
                spec.use_case_set, topology, placement, groups=resolved,
                method_name=method_name, validate=False,
            )
        bundle = self.requirements_for(spec, resolved)
        outcomes = self._evaluate_groups(bundle, topology, placement)

        # Reassemble the per-use-case configurations in the exact global
        # order the general path records allocations in (float accumulations
        # downstream observe insertion order).
        total_cost, configurations = self._walk_outcomes(bundle, outcomes, {})
        result = MappingResult(
            method=method_name,
            topology=topology,
            params=self.params,
            config=self.config,
            core_mapping=dict(placement),
            groups=resolved,
            configurations=configurations,
            attempted_topologies=(topology.name,),
        )
        result.cached_communication_cost = total_cost
        return result

    # ------------------------------------------------------------------ #
    # cache export hooks (the jobs layer persists results across processes)
    # ------------------------------------------------------------------ #
    def cache_info(self) -> Dict[str, int]:
        """Current cache sizes plus hit/miss counters, for job-level telemetry.

        The jobs layer attaches this to each :class:`~repro.jobs.JobResult`
        (under ``stats["engine"]``) so a sweep farm can see how much work
        the engine short-circuited.  This docstring is the canonical
        reference for the counter fields:

        ``specs`` / ``bundles`` / ``evaluations`` / ``results`` /
        ``worst_specs``
            Current sizes of the five in-memory caches (see the class
            docstring); sizes, not cumulative counts.
        ``result_hits`` / ``result_misses``
            Full mapping runs (:meth:`map`) answered from cache / actually
            performed.  A hit includes results materialised from imported
            seeds or an attached store; a job served entirely without
            recomputation reports ``result_misses == 0``, which is how the
            seeding tests prove nothing was recomputed.
        ``evaluation_hits`` / ``evaluation_misses``
            Fixed-placement group evaluations (the refinement hot path,
            :meth:`placement_cost` / :meth:`evaluate_placement`) answered
            from the in-memory cache, the imported-evaluation index or the
            attached store / actually computed.  A warm refinement whose
            candidates were all previously evaluated reports
            ``evaluation_misses == 0``.
        ``imported_results`` / ``imported_evaluations``
            How many of the hits above were materialised from *imported*
            state (:meth:`import_results` / :meth:`import_evaluations` /
            an attached :class:`~repro.jobs.store.EngineStateStore`)
            rather than computed earlier in this process.
        ``screen_hits`` / ``screen_misses``
            Traffic of the batched candidate screen (:meth:`screener`):
            group projections answered from a screen's run-local memo /
            computed by its vectorised kernel.  Every ``screen_miss`` is
            also counted as an ``evaluation_miss`` (the kernel evaluation
            *is* the computation, admitted to the evaluation cache);
            projections a screen recalls from the caches above count as
            ``evaluation_hits`` like any other recall.  A refinement run
            that used screening at all reports ``screen_hits +
            screen_misses > 0``.

        Counters are cumulative since engine construction and shared with
        :meth:`with_params` siblings, so a frequency search's probes report
        into the owning job's stats.
        """
        info = {
            "specs": len(self._specs),
            "bundles": len(self._bundles),
            "evaluations": len(self._group_evals),
            "results": len(self._results),
            "worst_specs": len(self._worst_specs),
        }
        info.update(self._counters)
        return info

    def attach_store(self, store) -> None:
        """Consult an on-disk engine-state store directly on cache misses.

        ``store`` is duck-typed to the
        :class:`~repro.jobs.store.EngineStateStore` read API
        (``result_key`` / ``get_result`` / ``evaluation_context`` /
        ``load_evaluations``).  Once attached, a :meth:`map` miss looks the
        result up by content key, and the first evaluation miss against a
        (spec, grouping, topology) context loads that context's stored
        entries into the lazy seed index — the engine reads *only the keys
        it misses*, so a large store costs nothing to attach.  Attachment is
        inherited by :meth:`with_params` siblings (each computes keys at its
        own operating point).  The engine never writes to the store; the
        jobs runner ingests :meth:`export_results` /
        :meth:`export_evaluations` after an execution finishes.
        """
        self._store = store

    def import_results(self, entries: Iterable[Dict]) -> int:
        """Seed the full-mapping result cache from exported result entries.

        The import half of :meth:`export_results` (ROADMAP follow-up (h)):
        each entry is re-keyed under ``(spec_hash, groups, method)`` and a
        subsequent :meth:`map` of the same specification returns the rebuilt
        result without re-evaluating anything.  Only entries whose stored
        ``params``/``config`` match this engine's operating point are
        admitted to its seed index — the rest are retained and offered to
        every :meth:`with_params` sibling, so a frequency search's probes
        can hit too.  Indexing is cheap (no deserialisation); an entry is
        rebuilt into a live ``MappingResult`` only when a :meth:`map` call
        actually asks for its key, so a large corpus costs nothing per
        engine until a job needs one of its mappings.  Entries that are
        malformed, already cached or from a different operating point are
        skipped silently; the count of newly indexed entries is returned.

        Seeding only ever short-circuits deterministic recomputation: the
        round trip through :func:`mapping_result_from_dict` is canonical, so
        a seeded engine is bit-identical to a cold one.
        """
        fresh = [entry for entry in entries if isinstance(entry, dict)]
        self._seed_entries.extend(fresh)
        return self._index_seeds(fresh)

    def _index_seeds(self, entries: Iterable[Dict]) -> int:
        """Admit matching entries to the lazy seed index; returns how many."""
        params_document = self.params.to_dict()
        config_document = self.config.to_dict()
        indexed = 0
        for entry in entries:
            try:
                document = entry["result"]
                key = (
                    entry["spec_hash"],
                    tuple(frozenset(group) for group in entry["groups"]),
                    entry["method"],
                )
            except (KeyError, TypeError):
                continue
            if not isinstance(document, dict):
                continue
            if (
                document.get("params") != params_document
                or document.get("config") != config_document
            ):
                continue
            if key in self._results or key in self._seed_index:
                continue
            self._seed_index[key] = document
            indexed += 1
        return indexed

    def _materialise_seed(self, key) -> Optional[MappingResult]:
        """Rebuild one indexed seed entry on demand (a :meth:`map` miss)."""
        document = self._seed_index.pop(key, None)
        if document is None:
            return None
        return self._admit_imported_result(key, document)

    def _materialise_store_result(self, key) -> Optional[MappingResult]:
        """Look one :meth:`map` miss up in the attached engine-state store."""
        if self._store is None:
            return None
        spec_hash, resolved, method_name = key
        params_document, config_document = self._own_documents()
        store_key = self._store.result_key(
            spec_hash,
            [sorted(group) for group in resolved],
            method_name,
            params_document,
            config_document,
        )
        entry = self._store.get_result(store_key)
        if not isinstance(entry, dict) or not isinstance(entry.get("result"), dict):
            return None
        return self._admit_imported_result(key, entry["result"])

    def _admit_imported_result(self, key, document: Dict) -> Optional[MappingResult]:
        """Rebuild an imported result document into the result cache."""
        from repro.io.serialization import mapping_result_from_dict

        try:
            result = mapping_result_from_dict(document)
        except ReproError:
            return None  # corrupt entry: fall through to recomputation
        self._results[key] = result
        self._imported_keys.add(key)
        if len(self._results) > self._RESULT_CACHE_SIZE:
            self._results.popitem(last=False)
        self._counters["imported_results"] += 1
        return result

    def _own_documents(self) -> Tuple[Dict, Dict]:
        """This engine's params/config documents (store key components)."""
        if self._own_docs is None:
            self._own_docs = (self.params.to_dict(), self.config.to_dict())
        return self._own_docs

    def _topology_doc(self, topology: Topology) -> Tuple[Dict, str]:
        """Canonical document + fingerprint of a topology (identity-memoised)."""
        entry = self._topology_docs.get(id(topology))
        if entry is not None and entry[0] is topology:
            self._topology_docs.move_to_end(id(topology))
            return entry[1], entry[2]
        from repro.io.serialization import document_fingerprint, topology_to_dict

        document = topology_to_dict(topology)
        fingerprint = document_fingerprint(document)
        self._topology_docs[id(topology)] = (topology, document, fingerprint)
        if len(self._topology_docs) > self._SPEC_CACHE_SIZE:
            self._topology_docs.popitem(last=False)
        return document, fingerprint

    # ------------------------------------------------------------------ #
    # fixed-placement evaluation export/import (ROADMAP follow-up (k))
    # ------------------------------------------------------------------ #
    def import_evaluations(self, documents: Iterable[Dict]) -> int:
        """Seed the fixed-placement evaluation cache from exported entries.

        The import half of :meth:`export_evaluations`, with the same
        lazy-index, never-re-export discipline as :meth:`import_results`:
        entries whose context matches this engine's operating point are
        admitted to a key-addressed index (no deserialisation up front) and
        rebuilt into live :class:`~repro.core.mapping.PairPlacement` lists
        only when an evaluation miss actually asks for their key; the raw
        documents are retained and offered to every :meth:`with_params`
        sibling.  Materialised entries are excluded from
        :meth:`export_evaluations`, so a seeded engine never re-exports the
        corpus it was fed.  Malformed documents are skipped silently; the
        count of newly indexed entries is returned.

        Seeding only short-circuits deterministic recomputation: entries
        round-trip bit-exactly, so a warm refinement accepts the same moves
        at the same costs as a cold one.
        """
        fresh = [entry for entry in documents if isinstance(entry, dict)]
        self._seed_eval_docs.extend(fresh)
        return self._index_eval_seeds(fresh)

    def _index_eval_seeds(self, documents: Iterable[Dict]) -> int:
        """Admit matching evaluation entries to the lazy index; count them."""
        from repro.io.serialization import document_fingerprint

        params_document, config_document = self._own_documents()
        indexed = 0
        for document in documents:
            try:
                if (
                    document["params"] != params_document
                    or document["config"] != config_document
                ):
                    continue
                spec_hash = document["spec_hash"]
                groups_key = tuple(
                    tuple(sorted(group)) for group in document["groups"]
                )
                topology_fp = document_fingerprint(document["topology"])
                entries = document["entries"]
            except (KeyError, TypeError):
                continue
            if not isinstance(entries, list):
                continue
            for entry in entries:
                try:
                    key = (
                        spec_hash,
                        groups_key,
                        topology_fp,
                        int(entry["group_id"]),
                        tuple(int(v) for v in entry["projection"]),
                    )
                except (KeyError, TypeError, ValueError):
                    continue
                if key in self._eval_seed_index or key in self._imported_eval_keys:
                    continue
                self._eval_seed_index[key] = entry.get("outcome")
                indexed += 1
        return indexed

    def _imported_evaluation(
        self,
        bundle: _RequirementBundle,
        topology: Topology,
        group_id: int,
        projection: Tuple[int, ...],
    ) -> Optional[Tuple[Optional[List]]]:
        """Serve one evaluation miss from imports or the attached store.

        Returns ``None`` when nothing was imported for the key, else a
        1-tuple wrapping the *parsed* (path, starts) pair list (which is
        itself ``None`` for a cached infeasibility — the wrapper keeps the
        two distinguishable).  Parsing/validation happens here so a corrupt
        entry degrades to recomputation instead of failing mid-assembly;
        live ``PairPlacement`` objects are built lazily by
        :class:`_GroupOutcome` — only accepted candidates pay for them.
        """
        if not self._eval_seed_index and self._store is None:
            return None
        topology_document, topology_fp = self._topology_doc(topology)
        content_key = (
            bundle.spec_hash, bundle.groups_key, topology_fp, group_id, projection,
        )
        outcome_document = self._eval_seed_index.pop(content_key, _MISSING)
        if outcome_document is _MISSING and self._store is not None:
            # First miss against this (spec, grouping, topology) context:
            # load the whole context shard once; later candidates of the
            # same refinement run are answered from the index in memory.
            params_document, config_document = self._own_documents()
            context = self._store.evaluation_context(
                bundle.spec_hash, bundle.groups_key, topology_document,
                params_document, config_document,
            )
            if context not in self._store_contexts:
                self._store_contexts.add(context)
                for (gid, proj), entry in self._store.load_evaluations(
                    context
                ).items():
                    key = (
                        bundle.spec_hash, bundle.groups_key, topology_fp, gid, proj,
                    )
                    if (
                        key not in self._eval_seed_index
                        and key not in self._imported_eval_keys
                    ):
                        self._eval_seed_index[key] = entry.get("outcome")
                outcome_document = self._eval_seed_index.pop(content_key, _MISSING)
        if outcome_document is _MISSING:
            return None
        pairs = None
        if outcome_document is not None:
            pairs = _parse_outcome_doc(
                outcome_document, len(bundle.group_plans[group_id])
            )
            if pairs is None:
                return None  # corrupt entry: fall through to recomputation
        self._imported_eval_keys.add(content_key)
        return (pairs,)

    def export_evaluations(self) -> List[Dict]:
        """Serialise the fixed-placement evaluations *this engine computed*.

        The evaluation twin of :meth:`export_results`: entries materialised
        from imports (or the attached store) are excluded, so the corpus
        stays proportional to distinct evaluations.  Entries are grouped
        into one document per (spec, grouping, topology) context — the unit
        :class:`~repro.jobs.store.EngineStateStore` shards by — each
        carrying the serialisable key components (``spec_hash``,
        ``groups``, the canonical ``topology`` document, ``params``,
        ``config``) plus the per-key ``entries``
        (``group_id`` / ``projection`` / ``outcome``, where a ``null``
        outcome records a cached infeasibility).
        """
        params_document, config_document = self._own_documents()
        grouped: "OrderedDict[Tuple, Dict]" = OrderedDict()
        for (_, _, group_id, projection), (bundle, topology, outcome) in (
            self._group_evals.items()
        ):
            _, topology_fp = self._topology_doc(topology)
            content_key = (
                bundle.spec_hash, bundle.groups_key, topology_fp, group_id, projection,
            )
            if content_key in self._imported_eval_keys:
                continue
            context = (bundle.spec_hash, bundle.groups_key, topology_fp)
            document = grouped.get(context)
            if document is None:
                document = {
                    "spec_hash": bundle.spec_hash,
                    "groups": [list(group) for group in bundle.groups_key],
                    "topology": self._topology_doc(topology)[0],
                    "params": params_document,
                    "config": config_document,
                    "entries": [],
                }
                grouped[context] = document
            document["entries"].append(
                {
                    "group_id": group_id,
                    "projection": list(projection),
                    "outcome": _outcome_to_doc(
                        None if outcome is None else outcome.entries
                    ),
                }
            )
        return list(grouped.values())

    def export_results(self) -> List[Dict]:
        """Serialise the full-mapping results *this engine computed*.

        Results that were materialised from imported seed entries are
        excluded — the store they came from already holds them, and
        re-exporting would snowball every downstream envelope with the
        whole prior corpus.

        Each entry carries the cache key components (``spec_hash``,
        ``groups``, ``method``) plus the :func:`mapping_result_to_dict`
        payload, so an external store — a sweep farm's artifact bucket, or
        the persistent :class:`~repro.jobs.cache.JobCache` — can dump what
        this process computed and rebuild the results elsewhere.
        :meth:`import_results` is the matching import half: the jobs layer
        attaches these entries to every stored ``JobResult`` envelope and
        seeds fresh engines from them (``JobCache.seed_engine``), so a job
        that *contains* an already-computed mapping skips recomputation.
        """
        from repro.io.serialization import mapping_result_to_dict

        exported: List[Dict] = []
        for (spec_hash, resolved, method_name), result in self._results.items():
            if (spec_hash, resolved, method_name) in self._imported_keys:
                continue
            exported.append(
                {
                    "spec_hash": spec_hash,
                    "groups": [sorted(group) for group in resolved],
                    "method": method_name,
                    "result": mapping_result_to_dict(result),
                }
            )
        return exported

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MappingEngine(specs={len(self._specs)}, bundles={len(self._bundles)}, "
            f"evaluations={len(self._group_evals)}, results={len(self._results)})"
        )
