"""The mapping session object: compiled specs plus caches shared across runs.

A :class:`MappingEngine` owns one :class:`~repro.core.mapping.UnifiedMapper`
(one operating point + algorithm configuration) and the caches that let the
rest of the system evaluate the same specification many times without
re-deriving anything:

* **spec cache** — ``UseCaseSet`` → :class:`~repro.core.spec.CompiledSpec`
  (compiling freezes the set, so a hit can never be stale);
* **requirement cache** — (spec hash, resolved grouping) →
  ``GroupRequirement``/``_Worklist`` bundle, shared by every refinement
  candidate, worst-case mesh attempt and sweep point;
* **evaluation cache** — (group, endpoint-placement projection) → the
  group's flow allocations, which makes repeated fixed-placement
  evaluations (the annealing/tabu inner loop) hit instead of re-mapping;
* **result cache** — (spec hash, grouping, method) → ``MappingResult`` for
  full mapping runs, shared by sweeps that revisit a design.

Engines are cheap to create; use :meth:`with_params` to derive a sibling at
a different operating point that *shares* the params-independent spec and
requirement caches (the frequency searches lean on this).

Everything the engine returns is bit-identical to driving
:class:`UnifiedMapper` directly — caches only ever short-circuit
deterministic recomputation.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple, Union

from repro.core.mapping import GroupRequirement, GroupSpec, UnifiedMapper, _Worklist
from repro.core.result import MappingResult, UseCaseConfiguration
from repro.core.spec import CompiledSpec, compile_spec
from repro.core.switching import SwitchingGraph
from repro.core.usecase import UseCaseSet
from repro.exceptions import MappingError, ReproError
from repro.noc.topology import Topology
from repro.params import MapperConfig, NoCParameters

__all__ = ["MappingEngine"]

SpecLike = Union[UseCaseSet, CompiledSpec]


class _RequirementBundle:
    """Everything derived from (spec, grouping) that mapping runs share."""

    __slots__ = (
        "requirements",
        "worklist",
        "order",
        "group_plans",
        "group_endpoints",
        "spec_core_names",
    )

    def __init__(self, spec: CompiledSpec, resolved: Tuple[FrozenSet[str], ...]) -> None:
        self.spec_core_names = spec.core_names
        compiled_groups = spec.groups_for(resolved)
        self.requirements: Tuple[GroupRequirement, ...] = tuple(
            GroupRequirement.from_compiled(group) for group in compiled_groups
        )
        self.worklist = _Worklist(self.requirements)
        #: global fixed-placement processing order (see _Worklist)
        self.order = self.worklist.placement_sequence()
        #: per group: its slice of ``order``, each requirement paired with
        #: the (member name, member flow) records to emit for it
        self.group_plans: Dict[int, List] = {req.group_id: [] for req in self.requirements}
        by_group = {req.group_id: req for req in self.requirements}
        for pair_req in self.order:
            requirement = by_group[pair_req.group_id]
            members = tuple(
                (member.name, flow)
                for member in requirement.members
                for flow in (member.flow_between(pair_req.source, pair_req.destination),)
                if flow is not None
            )
            self.group_plans[pair_req.group_id].append((pair_req, members))
        #: per group: the cores whose placement its evaluation depends on,
        #: as indices into the spec's interned core table (compact cache keys)
        self.group_endpoints: Dict[int, Tuple[int, ...]] = {
            group.group_id: tuple(spec.core_index[name] for name in group.endpoints)
            for group in compiled_groups
        }


class MappingEngine:
    """Session object owning compiled specs and cross-run mapping caches."""

    #: bound on cached fixed-placement group evaluations (LRU)
    _EVAL_CACHE_SIZE = 8192
    #: bound on cached full mapping results (LRU)
    _RESULT_CACHE_SIZE = 128
    #: bound on cached compiled specs and set-identity fast-path entries (LRU)
    _SPEC_CACHE_SIZE = 256
    #: bound on cached requirement bundles (LRU)
    _BUNDLE_CACHE_SIZE = 64

    def __init__(
        self,
        params: NoCParameters | None = None,
        config: MapperConfig | None = None,
    ) -> None:
        self.params = params or NoCParameters()
        self.config = config or MapperConfig()
        self.mapper = UnifiedMapper(params=self.params, config=self.config)
        #: spec hash -> CompiledSpec (authoritative, params-independent)
        self._specs: "OrderedDict[str, CompiledSpec]" = OrderedDict()
        #: id(UseCaseSet) -> (set, CompiledSpec) fast path; the entry pins
        #: the keyed set so its id cannot be recycled while it exists, and
        #: the identity check guards a key surviving its set
        self._specs_by_id: "OrderedDict[int, Tuple[UseCaseSet, CompiledSpec]]" = (
            OrderedDict()
        )
        #: (spec hash, resolved grouping) -> _RequirementBundle
        self._bundles: "OrderedDict[Tuple[str, Tuple[FrozenSet[str], ...]], _RequirementBundle]" = (
            OrderedDict()
        )
        #: (id(bundle), id(topology), group id, endpoint projection) ->
        #: (bundle, topology, group evaluation | None); the bundle and
        #: topology references pin their ids against recycling
        self._group_evals: "OrderedDict" = OrderedDict()
        #: (spec hash, resolved grouping, method name) -> MappingResult
        self._results: "OrderedDict" = OrderedDict()
        #: spec hash -> compiled worst-case spec (see worst_case)
        self._worst_specs: "OrderedDict[str, CompiledSpec]" = OrderedDict()
        #: exported-result documents offered to this engine (import_results);
        #: shared by reference with with_params siblings so operating-point
        #: probes can index the entries that match *their* params
        self._seed_entries: List[Dict] = []
        #: result-cache key -> raw exported document, for entries matching
        #: this engine's operating point; deserialised lazily on a map()
        #: miss, so a large corpus costs nothing until a job actually needs
        #: one of its mappings
        self._seed_index: Dict = {}
        #: result-cache keys that were materialised from seed entries rather
        #: than computed here; export_results skips them so a seeded engine
        #: never re-exports (and thereby snowballs) the corpus it was fed
        self._imported_keys: set = set()
        #: cumulative hit/miss/import telemetry, shared with siblings so a
        #: frequency search's probes report into the owning job's stats
        self._counters: Dict[str, int] = {
            "result_hits": 0,
            "result_misses": 0,
            "evaluation_hits": 0,
            "evaluation_misses": 0,
            "imported_results": 0,
        }

    # ------------------------------------------------------------------ #
    # compilation and derived-state caches
    # ------------------------------------------------------------------ #
    def compile(self, use_cases: SpecLike) -> CompiledSpec:
        """Compile (and freeze) a use-case set, reusing any cached spec."""
        if isinstance(use_cases, CompiledSpec):
            return use_cases
        entry = self._specs_by_id.get(id(use_cases))
        if entry is not None and entry[0] is use_cases:
            self._specs_by_id.move_to_end(id(use_cases))
            return entry[1]
        spec = compile_spec(use_cases)
        existing = self._specs.get(spec.spec_hash)
        if existing is not None:
            self._specs.move_to_end(spec.spec_hash)
            spec = existing
        else:
            self._specs[spec.spec_hash] = spec
            if len(self._specs) > self._SPEC_CACHE_SIZE:
                self._specs.popitem(last=False)
        self._specs_by_id[id(use_cases)] = (use_cases, spec)
        if len(self._specs_by_id) > self._SPEC_CACHE_SIZE:
            self._specs_by_id.popitem(last=False)
        return spec

    def resolve_groups(
        self,
        spec: CompiledSpec,
        groups: GroupSpec = None,
        switching_graph: Optional[SwitchingGraph] = None,
    ) -> Tuple[FrozenSet[str], ...]:
        """Resolve and validate the smooth-switching grouping for a spec."""
        return self.mapper._resolve_groups(spec, groups, switching_graph)

    def requirements_for(
        self,
        spec: CompiledSpec,
        resolved_groups: Tuple[FrozenSet[str], ...],
    ) -> _RequirementBundle:
        """The cached requirement/worklist bundle of one (spec, grouping)."""
        key = (spec.spec_hash, resolved_groups)
        bundle = self._bundles.get(key)
        if bundle is None:
            bundle = _RequirementBundle(spec, resolved_groups)
            self._bundles[key] = bundle
            if len(self._bundles) > self._BUNDLE_CACHE_SIZE:
                self._bundles.popitem(last=False)
        else:
            self._bundles.move_to_end(key)
        return bundle

    def with_params(
        self,
        params: NoCParameters | None = None,
        config: MapperConfig | None = None,
    ) -> "MappingEngine":
        """A sibling engine at another operating point, sharing spec caches.

        Compiled specs, requirement bundles and worst-case specs are pure
        functions of the specification and are shared by reference; mapping
        results and evaluations (which depend on params/config) are not.
        """
        sibling = MappingEngine(params or self.params, config or self.config)
        sibling._specs = self._specs
        sibling._specs_by_id = self._specs_by_id
        sibling._bundles = self._bundles
        sibling._worst_specs = self._worst_specs
        sibling._counters = self._counters
        sibling._seed_entries = self._seed_entries
        if self._seed_entries:
            sibling._index_seeds(self._seed_entries)
        return sibling

    # ------------------------------------------------------------------ #
    # full mapping runs
    # ------------------------------------------------------------------ #
    def map(
        self,
        use_cases: SpecLike,
        groups: GroupSpec = None,
        switching_graph: Optional[SwitchingGraph] = None,
        method_name: str = "unified",
    ) -> MappingResult:
        """Map a design onto the smallest feasible topology (cached).

        Semantically identical to :meth:`UnifiedMapper.map`; repeated calls
        for the same specification, grouping and method return the cached
        result object.
        """
        spec = self.compile(use_cases)
        resolved = self.resolve_groups(spec, groups, switching_graph)
        key = (spec.spec_hash, resolved, method_name)
        cached = self._results.get(key)
        if cached is not None:
            self._results.move_to_end(key)
            self._counters["result_hits"] += 1
            return cached
        seeded = self._materialise_seed(key)
        if seeded is not None:
            self._counters["result_hits"] += 1
            return seeded
        self._counters["result_misses"] += 1
        bundle = self.requirements_for(spec, resolved)
        result = self.mapper.map_requirements(
            spec.core_names, bundle.requirements, bundle.worklist, resolved, method_name
        )
        self._results[key] = result
        if len(self._results) > self._RESULT_CACHE_SIZE:
            self._results.popitem(last=False)
        return result

    def map_batch(
        self,
        designs: Iterable[SpecLike],
        groups: GroupSpec = None,
        switching_graph: Optional[SwitchingGraph] = None,
        method_name: str = "unified",
    ) -> List[Optional[MappingResult]]:
        """Map several designs in one pass, sharing every engine cache.

        The batch entry point for sweeps: each design is compiled at most
        once for the whole batch (and across batches on the same engine).
        Designs that cannot be mapped yield ``None`` instead of raising, so
        a sweep row can record the failure the way the paper's figures do.
        """
        results: List[Optional[MappingResult]] = []
        for design in designs:
            try:
                results.append(
                    self.map(design, groups=groups, switching_graph=switching_graph,
                             method_name=method_name)
                )
            except MappingError:
                results.append(None)
        return results

    def worst_case(self, use_cases: SpecLike) -> MappingResult:
        """Map a design with the worst-case baseline method (cached).

        The synthetic worst-case use-case is itself derived (and compiled)
        once per spec hash, so growing-mesh attempts and repeated calls —
        the frequency searches probe many operating points — share one
        compilation.
        """
        from repro.core.worstcase import WORST_CASE_NAME, build_worst_case_use_case

        spec = self.compile(use_cases)
        worst_spec = self._worst_specs.get(spec.spec_hash)
        if worst_spec is None:
            worst = build_worst_case_use_case(spec.use_case_set, name=WORST_CASE_NAME)
            singleton = UseCaseSet([worst], name=f"{spec.name}-worst-case")
            worst_spec = self.compile(singleton)
            self._worst_specs[spec.spec_hash] = worst_spec
            if len(self._worst_specs) > self._SPEC_CACHE_SIZE:
                self._worst_specs.popitem(last=False)
        else:
            self._worst_specs.move_to_end(spec.spec_hash)
        return self.map(worst_spec, method_name="worst_case")

    # ------------------------------------------------------------------ #
    # fixed-placement evaluation (the refinement hot path)
    # ------------------------------------------------------------------ #
    def _evaluate_groups(
        self,
        bundle: _RequirementBundle,
        topology: Topology,
        placement: Mapping[str, int],
    ) -> Dict[int, List]:
        """Evaluate (or recall) every group under a complete placement.

        Validates the placement globally (switch indices exist, per-switch
        core limit holds — mirroring the checks the per-state attachments
        perform in the general path), then evaluates each group against the
        memoised (group, endpoint-placement) cache.  Raises
        :class:`MappingError` when the placement or any group is infeasible.
        """
        limit = self.params.max_cores_per_switch
        occupancy: Dict[int, int] = {}
        for core, switch in placement.items():
            topology.switch(switch)
            occupancy[switch] = occupancy.get(switch, 0) + 1
            if limit is not None and occupancy[switch] > limit:
                raise MappingError(
                    f"placement is infeasible on topology {topology.name!r}",
                    largest_topology=topology.name,
                )

        core_names = bundle.spec_core_names
        evals = self._group_evals
        outcomes: Dict[int, List] = {}
        for requirement in bundle.requirements:
            group_id = requirement.group_id
            projection = tuple(
                placement[core_names[index]]
                for index in bundle.group_endpoints[group_id]
            )
            key = (id(bundle), id(topology), group_id, projection)
            entry = evals.get(key)
            if entry is not None and entry[0] is bundle and entry[1] is topology:
                evals.move_to_end(key)
                self._counters["evaluation_hits"] += 1
                outcome = entry[2]
            else:
                self._counters["evaluation_misses"] += 1
                outcome = self.mapper.evaluate_group_fixed(
                    topology, group_id, bundle.group_plans[group_id], placement
                )
                evals[key] = (bundle, topology, outcome)
                if len(evals) > self._EVAL_CACHE_SIZE:
                    evals.popitem(last=False)
            if outcome is None:
                raise MappingError(
                    f"placement is infeasible on topology {topology.name!r}",
                    largest_topology=topology.name,
                )
            outcomes[group_id] = outcome
        return outcomes

    def placement_cost(
        self,
        use_cases: SpecLike,
        topology: Topology,
        placement: Mapping[str, int],
        groups: GroupSpec = None,
        switching_graph: Optional[SwitchingGraph] = None,
    ) -> float:
        """Communication cost (Σ bandwidth × hops) of a complete placement.

        The cost-only twin of :meth:`evaluate_placement`: it runs (or
        recalls) the same per-group evaluations but skips materialising the
        ``MappingResult``, which the refiners only need for *accepted*
        candidates — a subsequent :meth:`evaluate_placement` for the same
        placement hits the evaluation cache and only pays for assembly.
        The float is bit-identical to summing the assembled result.

        Raises :class:`MappingError` when the placement is infeasible.
        """
        spec = self.compile(use_cases)
        resolved = self.resolve_groups(spec, groups, switching_graph)
        if any(name not in placement for name in spec.core_names):
            result = self.mapper.map_with_placement(
                spec.use_case_set, topology, placement, groups=resolved,
                validate=False,
            )
            return sum(
                configuration.total_bandwidth_hops()
                for configuration in result.configurations.values()
            )
        bundle = self.requirements_for(spec, resolved)
        outcomes = self._evaluate_groups(bundle, topology, placement)
        return self._walk_outcomes(bundle, outcomes)[0]

    @staticmethod
    def _walk_outcomes(
        bundle: _RequirementBundle,
        outcomes: Mapping[int, List],
        configurations: Optional[Dict[str, UseCaseConfiguration]] = None,
    ) -> Tuple[float, Dict[str, UseCaseConfiguration]]:
        """Walk group outcomes in the exact global allocation order.

        The single accumulation loop behind both :meth:`placement_cost` and
        :meth:`evaluate_placement`: per-use-case cost sums build up in the
        order the monolithic path records allocations (float addition order
        is part of the bit-identical contract), and when ``configurations``
        is supplied the allocations are materialised into it as well.
        Returns the total communication cost and the configurations map.
        """
        cost_sums: Dict[str, float] = {}
        for requirement in bundle.requirements:
            for name in requirement.member_names:
                cost_sums[name] = 0
                if configurations is not None:
                    configurations[name] = UseCaseConfiguration(
                        name, requirement.group_id
                    )
        cursor: Dict[int, int] = {gid: 0 for gid in outcomes}
        for pair_req in bundle.order:
            group_id = pair_req.group_id
            index = cursor[group_id]
            cursor[group_id] = index + 1
            entry = outcomes[group_id][index]
            terms = entry.cost_terms
            if configurations is None:
                members = entry.members
                for position in range(len(terms)):
                    name = members[position][0]
                    cost_sums[name] = cost_sums[name] + terms[position]
            else:
                for position, (name, allocation) in enumerate(entry.allocations()):
                    configurations[name].add(allocation)
                    cost_sums[name] = cost_sums[name] + terms[position]
        return sum(cost_sums.values()), configurations if configurations is not None else {}

    def evaluate_placement(
        self,
        use_cases: SpecLike,
        topology: Topology,
        placement: Mapping[str, int],
        groups: GroupSpec = None,
        switching_graph: Optional[SwitchingGraph] = None,
        method_name: str = "unified-fixed-placement",
    ) -> MappingResult:
        """Map a design onto a fixed topology and complete core placement.

        Drop-in equivalent of :meth:`UnifiedMapper.map_with_placement` for
        placements that cover every core of the design (the refinement
        passes always do): each configuration group is evaluated
        independently against its cached requirement sequence, and the
        evaluation is memoised on the placement of the group's endpoint
        cores — unchanged groups and revisited placements are free.
        Placements that leave cores unmapped fall back to the general path.

        Raises :class:`MappingError` when the placement is infeasible.
        """
        spec = self.compile(use_cases)
        resolved = self.resolve_groups(spec, groups, switching_graph)
        if any(name not in placement for name in spec.core_names):
            return self.mapper.map_with_placement(
                spec.use_case_set, topology, placement, groups=resolved,
                method_name=method_name, validate=False,
            )
        bundle = self.requirements_for(spec, resolved)
        outcomes = self._evaluate_groups(bundle, topology, placement)

        # Reassemble the per-use-case configurations in the exact global
        # order the general path records allocations in (float accumulations
        # downstream observe insertion order).
        total_cost, configurations = self._walk_outcomes(bundle, outcomes, {})
        result = MappingResult(
            method=method_name,
            topology=topology,
            params=self.params,
            config=self.config,
            core_mapping=dict(placement),
            groups=resolved,
            configurations=configurations,
            attempted_topologies=(topology.name,),
        )
        result.cached_communication_cost = total_cost
        return result

    # ------------------------------------------------------------------ #
    # cache export hooks (the jobs layer persists results across processes)
    # ------------------------------------------------------------------ #
    def cache_info(self) -> Dict[str, int]:
        """Current cache sizes plus hit/miss counters, for job-level telemetry.

        The jobs layer attaches this to each :class:`~repro.jobs.JobResult`
        so a sweep farm can see how much work the engine short-circuited.
        ``result_misses`` counts full mapping runs this engine (and its
        :meth:`with_params` siblings — counters are shared) actually
        performed; a job served entirely from imported results reports
        ``result_misses == 0``, which is how the service tests prove the
        seeding path recomputes nothing.
        """
        info = {
            "specs": len(self._specs),
            "bundles": len(self._bundles),
            "evaluations": len(self._group_evals),
            "results": len(self._results),
            "worst_specs": len(self._worst_specs),
        }
        info.update(self._counters)
        return info

    def import_results(self, entries: Iterable[Dict]) -> int:
        """Seed the full-mapping result cache from exported result entries.

        The import half of :meth:`export_results` (ROADMAP follow-up (h)):
        each entry is re-keyed under ``(spec_hash, groups, method)`` and a
        subsequent :meth:`map` of the same specification returns the rebuilt
        result without re-evaluating anything.  Only entries whose stored
        ``params``/``config`` match this engine's operating point are
        admitted to its seed index — the rest are retained and offered to
        every :meth:`with_params` sibling, so a frequency search's probes
        can hit too.  Indexing is cheap (no deserialisation); an entry is
        rebuilt into a live ``MappingResult`` only when a :meth:`map` call
        actually asks for its key, so a large corpus costs nothing per
        engine until a job needs one of its mappings.  Entries that are
        malformed, already cached or from a different operating point are
        skipped silently; the count of newly indexed entries is returned.

        Seeding only ever short-circuits deterministic recomputation: the
        round trip through :func:`mapping_result_from_dict` is canonical, so
        a seeded engine is bit-identical to a cold one.
        """
        fresh = [entry for entry in entries if isinstance(entry, dict)]
        self._seed_entries.extend(fresh)
        return self._index_seeds(fresh)

    def _index_seeds(self, entries: Iterable[Dict]) -> int:
        """Admit matching entries to the lazy seed index; returns how many."""
        params_document = self.params.to_dict()
        config_document = self.config.to_dict()
        indexed = 0
        for entry in entries:
            try:
                document = entry["result"]
                key = (
                    entry["spec_hash"],
                    tuple(frozenset(group) for group in entry["groups"]),
                    entry["method"],
                )
            except (KeyError, TypeError):
                continue
            if not isinstance(document, dict):
                continue
            if (
                document.get("params") != params_document
                or document.get("config") != config_document
            ):
                continue
            if key in self._results or key in self._seed_index:
                continue
            self._seed_index[key] = document
            indexed += 1
        return indexed

    def _materialise_seed(self, key) -> Optional[MappingResult]:
        """Rebuild one indexed seed entry on demand (a :meth:`map` miss)."""
        from repro.io.serialization import mapping_result_from_dict

        document = self._seed_index.pop(key, None)
        if document is None:
            return None
        try:
            result = mapping_result_from_dict(document)
        except ReproError:
            return None  # corrupt entry: fall through to recomputation
        self._results[key] = result
        self._imported_keys.add(key)
        if len(self._results) > self._RESULT_CACHE_SIZE:
            self._results.popitem(last=False)
        self._counters["imported_results"] += 1
        return result

    def export_results(self) -> List[Dict]:
        """Serialise the full-mapping results *this engine computed*.

        Results that were materialised from imported seed entries are
        excluded — the store they came from already holds them, and
        re-exporting would snowball every downstream envelope with the
        whole prior corpus.

        Each entry carries the cache key components (``spec_hash``,
        ``groups``, ``method``) plus the :func:`mapping_result_to_dict`
        payload, so an external store — a sweep farm's artifact bucket, or
        the persistent :class:`~repro.jobs.cache.JobCache` — can dump what
        this process computed and rebuild the results elsewhere.
        :meth:`import_results` is the matching import half: the jobs layer
        attaches these entries to every stored ``JobResult`` envelope and
        seeds fresh engines from them (``JobCache.seed_engine``), so a job
        that *contains* an already-computed mapping skips recomputation.
        """
        from repro.io.serialization import mapping_result_to_dict

        exported: List[Dict] = []
        for (spec_hash, resolved, method_name), result in self._results.items():
            if (spec_hash, resolved, method_name) in self._imported_keys:
                continue
            exported.append(
                {
                    "spec_hash": spec_hash,
                    "groups": [sorted(group) for group in resolved],
                    "method": method_name,
                    "result": mapping_result_to_dict(result),
                }
            )
        return exported

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MappingEngine(specs={len(self._specs)}, bundles={len(self._bundles)}, "
            f"evaluations={len(self._group_evals)}, results={len(self._results)})"
        )
