"""Unified multi-use-case mapping, path selection and slot reservation.

This module implements Algorithm 2 of the paper — the primary contribution:

1. Start from the smallest topology (a single switch) and grow it until a
   valid mapping exists (outer loop).
2. Sort the traffic flows of *all* use-cases together in non-increasing
   bandwidth order.
3. Repeatedly pick the largest remaining flow — preferring flows whose
   source or destination core is already mapped — and
4. choose a least-cost path for it; if its endpoints are unmapped, map them
   onto the switches at the ends of the chosen path.  Reserve bandwidth and
   TDMA slots for the flow.
5. For every *other* use-case that has a flow between the same pair of
   cores, select a least-cost path in **that use-case's own resource state**
   and reserve its resources there.  Use-cases inside the same
   smooth-switching group share one configuration, so their reservation is
   made once, in the group's shared state, sized for the largest bandwidth
   requirement among the group members.
6. Repeat until every flow of every use-case is mapped; if some flow cannot
   be placed, grow the topology and start over.

The key departure from the worst-case baseline (ref [25]) is step 5: each
use-case (or each smooth-switching group) owns an independent
:class:`~repro.noc.resources.ResourceState`, so traffic of use-cases that
never run simultaneously does not compete for the same bandwidth and slots.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.result import FlowAllocation, MappingResult, UseCaseConfiguration
from repro.core.switching import SwitchingGraph
from repro.core.usecase import Flow, TrafficClass, UseCase, UseCaseSet
from repro.exceptions import ConfigurationError, MappingError, ResourceError, SpecificationError
from repro.noc.resources import INFEASIBLE_COST, ResourceState
from repro.noc.routing import PathSelector
from repro.noc.slot_table import slots_needed_cached
from repro.noc.topology import Topology, mesh_growth_schedule
from repro.params import MapperConfig, NoCParameters
from repro.perf.latency import latency_hop_budget

__all__ = ["UnifiedMapper", "map_use_cases", "GroupRequirement"]

GroupSpec = Optional[Sequence[Iterable[str]]]


class _PairRequirement:
    """Aggregated requirement of one core pair within one configuration group.

    A plain ``__slots__`` value object (identity hash): the mapper creates
    one per (group, pair) per ``map`` call and compares them by identity, so
    dataclass equality machinery would only slow construction down.  ``pair``
    is read millions of times in the inner loop and is materialised once.
    """

    __slots__ = ("group_id", "source", "destination", "bandwidth", "latency",
                 "guaranteed", "pair", "flow_id")

    def __init__(
        self,
        group_id: int,
        source: str,
        destination: str,
        bandwidth: float,
        latency: float,
        guaranteed: bool,
    ) -> None:
        self.group_id = group_id
        self.source = source
        self.destination = destination
        self.bandwidth = bandwidth
        self.latency = latency
        self.guaranteed = guaranteed
        self.pair = (source, destination)
        #: reservation identifier, formatted once (read per placement attempt)
        self.flow_id = f"g{group_id}:{source}->{destination}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"_PairRequirement(group_id={self.group_id}, pair={self.pair}, "
            f"bandwidth={self.bandwidth:.3g}, latency={self.latency:.3g}, "
            f"guaranteed={self.guaranteed})"
        )


class GroupRequirement:
    """Per-pair aggregated traffic requirements of one smooth-switching group.

    Use-cases inside a group share one NoC configuration, so the group's slot
    tables must accommodate — for every core pair used by any member — the
    *largest* bandwidth and the *tightest* latency any member requires for
    that pair (the same rule the paper applies in step 6 of Algorithm 2).
    """

    def __init__(self, group_id: int, members: Sequence[UseCase]) -> None:
        self.group_id = group_id
        self.members: Tuple[UseCase, ...] = tuple(members)
        self.member_names: Tuple[str, ...] = tuple(uc.name for uc in members)
        # Accumulate per-pair maxima/minima in plain lists and build the
        # (immutable) requirement objects once per pair at the end, instead of
        # constructing a fresh dataclass instance on every merged flow.
        accumulated: Dict[Tuple[str, str], List] = {}
        for use_case in members:
            for flow in use_case.flows:
                guaranteed = flow.traffic_class == TrafficClass.GUARANTEED
                entry = accumulated.get(flow.pair)
                if entry is None:
                    accumulated[flow.pair] = [flow.bandwidth, flow.latency, guaranteed]
                else:
                    if flow.bandwidth > entry[0]:
                        entry[0] = flow.bandwidth
                    if flow.latency < entry[1]:
                        entry[1] = flow.latency
                    entry[2] = entry[2] or guaranteed
        self._pairs = self._build_pairs(group_id, accumulated.items())

    @staticmethod
    def _build_pairs(group_id, items) -> Dict[Tuple[str, str], _PairRequirement]:
        return {
            pair: _PairRequirement(
                group_id=group_id,
                source=pair[0],
                destination=pair[1],
                bandwidth=bandwidth,
                latency=latency,
                guaranteed=guaranteed,
            )
            for pair, (bandwidth, latency, guaranteed) in items
        }

    @classmethod
    def from_compiled(cls, group) -> "GroupRequirement":
        """Build a requirement from a :class:`~repro.core.spec.CompiledGroup`.

        The compiled group already aggregated its pair table (in the exact
        order this constructor would have), so no flow scan happens here —
        this is what lets the engine build requirements once per spec hash.
        """
        requirement = cls.__new__(cls)
        requirement.group_id = group.group_id
        requirement.members = group.members
        requirement.member_names = group.member_names
        requirement._pairs = cls._build_pairs(group.group_id, group.pair_table.items())
        return requirement

    @property
    def pair_requirements(self) -> Tuple[_PairRequirement, ...]:
        """All aggregated pair requirements of this group."""
        return tuple(self._pairs.values())

    def requirement_for(self, pair: Tuple[str, str]) -> Optional[_PairRequirement]:
        """The aggregated requirement of one core pair, or ``None``."""
        return self._pairs.get(pair)

    def core_loads(self) -> Tuple[Dict[str, float], Dict[str, float]]:
        """(egress, ingress) aggregated bandwidth per core for this group."""
        egress: Dict[str, float] = {}
        ingress: Dict[str, float] = {}
        for req in self._pairs.values():
            egress[req.source] = egress.get(req.source, 0.0) + req.bandwidth
            ingress[req.destination] = ingress.get(req.destination, 0.0) + req.bandwidth
        return egress, ingress


class _Worklist:
    """Bandwidth-sorted pair requirements plus pure indexes over them.

    Step 2 of Algorithm 2 sorts the aggregated pair requirements of all
    groups once; the sort and the derived lookup tables depend only on the
    requirements, so they are built once per ``map`` call and shared by
    every topology attempt of the outer loop.
    """

    def __init__(self, requirements: Sequence[GroupRequirement]) -> None:
        items: List[_PairRequirement] = [
            req for requirement in requirements for req in requirement.pair_requirements
        ]
        items.sort(key=lambda req: (-req.bandwidth, req.source, req.destination, req.group_id))
        self.items: Tuple[_PairRequirement, ...] = tuple(items)
        self.by_pair: Dict[Tuple[str, str], List[_PairRequirement]] = {}
        self.by_endpoint: Dict[str, List[int]] = {}
        self.position_of: Dict[_PairRequirement, int] = {}
        for position, req in enumerate(items):
            self.by_pair.setdefault(req.pair, []).append(req)
            self.position_of[req] = position
            self.by_endpoint.setdefault(req.source, []).append(position)
            if req.destination != req.source:
                self.by_endpoint.setdefault(req.destination, []).append(position)
        self._placement_sequence: Optional[Tuple[_PairRequirement, ...]] = None

    def placement_sequence(self) -> Tuple[_PairRequirement, ...]:
        """The order pairs are placed in when every core is already mapped.

        With a complete initial placement the "prefer mapped endpoints"
        tie-break never fires, so the main loop's processing order is a pure
        function of the worklist: repeatedly take the first live item and
        then every other live requirement of the same core pair.  The
        engine's fixed-placement evaluator replays this exact order without
        the per-candidate ``done``/head bookkeeping.
        """
        if self._placement_sequence is not None:
            return self._placement_sequence
        done = [False] * len(self.items)
        order: List[_PairRequirement] = []
        head = 0
        remaining = len(self.items)
        while remaining:
            while done[head]:
                head += 1
            chosen = self.items[head]
            for req in self.by_pair[chosen.pair]:
                position = self.position_of[req]
                if done[position]:
                    continue
                done[position] = True
                order.append(req)
                remaining -= 1
        self._placement_sequence = tuple(order)
        return self._placement_sequence


class _AttemptAccounting:
    """Live bookkeeping for one topology attempt of Algorithm 2.

    Replaces the per-query rescans of the seed implementation with data kept
    current on every core attachment:

    * ``occupancy`` — cores per switch (was rebuilt from the whole core
      mapping inside every ``_placement_candidates`` call);
    * ``nearest_core`` — per switch, the hop distance to the closest placed
      core (was an O(switches × placed-cores) scan per call);
    * ``preferred`` — a min-heap of bandwidth-order positions of pending
      pair requirements whose endpoint just became mapped, giving the
      paper's "prefer flows with mapped endpoints" tie-break in O(log n)
      instead of a linear scan over the pending list.
    """

    def __init__(self, topology: Topology, worklist: _Worklist) -> None:
        self.topology = topology
        switches = topology.switches
        # Occupancy keys double as the placement-candidate universe, so a
        # degraded topology's failed switches are excluded here: free
        # placement never even considers them.
        self.occupancy: Dict[int, int] = {
            sw.index: 0 for sw in switches if not topology.is_switch_down(sw.index)
        }
        self._positions = {sw.index: sw.position for sw in switches}
        #: per-switch distance to the nearest placed core; None until the
        #: first core is attached (the spacing term is constant then).
        self.nearest_core: Optional[Dict[int, int]] = None
        #: heap of item positions whose source/destination is mapped
        self.preferred: List[int] = []
        self._by_endpoint = worklist.by_endpoint

    def _distance(self, first: int, second: int) -> int:
        # Decide per pair, exactly like UnifiedMapper._switch_distance, so a
        # partially-positioned custom topology gets identical distances from
        # the incremental table and the seed's rescan.
        a = self._positions[first]
        b = self._positions[second]
        if a is not None and b is not None:
            return abs(a[0] - b[0]) + abs(a[1] - b[1])
        return self.topology.shortest_hop_count(first, second)

    def on_attach(self, core: str, switch: int) -> None:
        """Fold one core attachment into the live tables."""
        self.occupancy[switch] += 1
        if self.nearest_core is None:
            self.nearest_core = {
                index: self._distance(index, switch) for index in self.occupancy
            }
        else:
            nearest = self.nearest_core
            for index in nearest:
                distance = self._distance(index, switch)
                if distance < nearest[index]:
                    nearest[index] = distance
        for position in self._by_endpoint.get(core, ()):
            heapq.heappush(self.preferred, position)


class PairPlacement:
    """Outcome of placing one aggregated pair during fixed-placement evaluation.

    Holds what both consumers of a cached group evaluation need: the
    ``bandwidth x hops`` cost terms (cost-only candidate screening) and the
    ingredients of the member :class:`FlowAllocation` records, which are
    materialised lazily — only placements that get *accepted* ever assemble
    a full :class:`MappingResult` — and then memoised for later assemblies
    of the same cached evaluation.
    """

    __slots__ = ("members", "switch_path", "link_slots", "cost_terms", "_allocations")

    def __init__(
        self,
        members: Tuple[Tuple[str, Flow], ...],
        switch_path: Tuple[int, ...],
        link_slots: Mapping,
        cost_terms: Tuple[float, ...],
    ) -> None:
        self.members = members
        self.switch_path = switch_path
        self.link_slots = link_slots
        self.cost_terms = cost_terms
        self._allocations: Optional[Tuple[Tuple[str, FlowAllocation], ...]] = None

    def allocations(self) -> Tuple[Tuple[str, "FlowAllocation"], ...]:
        """(member name, allocation) pairs, built on first use and memoised."""
        cached = self._allocations
        if cached is None:
            switch_path = self.switch_path
            link_slots = self.link_slots
            cached = tuple(
                (
                    name,
                    FlowAllocation(
                        use_case=name,
                        flow=flow,
                        switch_path=switch_path,
                        link_slots=dict(link_slots),
                    ),
                )
                for name, flow in self.members
            )
            self._allocations = cached
        return cached


class UnifiedMapper:
    """The paper's unified mapping / path-selection / slot-reservation engine."""

    def __init__(
        self,
        params: NoCParameters | None = None,
        config: MapperConfig | None = None,
    ) -> None:
        self.params = params or NoCParameters()
        self.config = config or MapperConfig()
        #: small identity-keyed LRU of PathSelectors: the refinement passes
        #: call ``map_with_placement`` hundreds of times on one topology and
        #: reuse its candidate-path cache through this, while the bound keeps
        #: the outer loop's discarded topologies from accumulating.
        self._selector_cache: "OrderedDict[int, Tuple[Topology, PathSelector]]" = (
            OrderedDict()
        )
        #: pristine (no cores, no reservations) ResourceState per topology;
        #: every attempt copies the template instead of rebuilding the link
        #: and slot tables, and the copies share the template's path->links
        #: memo, so derived routing state carries over across the outer
        #: loop's growing mesh attempts and across refinement candidates.
        self._pristine_cache: "OrderedDict[int, Tuple[Topology, ResourceState]]" = (
            OrderedDict()
        )
        #: live accounting of the attempt currently in flight (None outside)
        self._acct: Optional[_AttemptAccounting] = None
        #: (bandwidth, latency) -> hop budget memo (pure function of params)
        self._hop_budget_cache: Dict[Tuple[float, float], Optional[int]] = {}
        #: id(plan) -> (plan, per-entry hop budgets) for engine evaluation
        #: plans; the entry pins the plan list so its id cannot be recycled
        #: while the entry exists, and the identity check guards against a
        #: key surviving its plan (bounded LRU)
        self._plan_budget_cache: "OrderedDict[int, Tuple[object, Tuple[Optional[int], ...]]]" = (
            OrderedDict()
        )

    #: number of (topology, PathSelector) pairs kept alive per mapper
    _SELECTOR_CACHE_SIZE = 4

    def _selector_for(self, topology: Topology) -> PathSelector:
        # Keyed by object identity; the cached entry keeps the topology
        # alive, so its id cannot be reused while the entry exists (the
        # ``is`` check is defence in depth).
        key = id(topology)
        entry = self._selector_cache.get(key)
        if entry is not None and entry[0] is topology:
            self._selector_cache.move_to_end(key)
            return entry[1]
        selector = PathSelector(topology, self.config)
        self._selector_cache[key] = (topology, selector)
        if len(self._selector_cache) > self._SELECTOR_CACHE_SIZE:
            self._selector_cache.popitem(last=False)
        return selector

    def _pristine_for(self, topology: Topology) -> ResourceState:
        """An empty ResourceState template for a topology (identity-cached)."""
        key = id(topology)
        entry = self._pristine_cache.get(key)
        if entry is not None and entry[0] is topology:
            self._pristine_cache.move_to_end(key)
            return entry[1]
        template = ResourceState(topology, self.params, name="pristine")
        self._pristine_cache[key] = (topology, template)
        if len(self._pristine_cache) > self._SELECTOR_CACHE_SIZE:
            self._pristine_cache.popitem(last=False)
        return template

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def map(
        self,
        use_cases: UseCaseSet,
        groups: GroupSpec = None,
        switching_graph: Optional[SwitchingGraph] = None,
        method_name: str = "unified",
    ) -> MappingResult:
        """Map a multi-use-case design onto the smallest feasible topology.

        Parameters
        ----------
        use_cases:
            The (already compound-expanded) use-case set.
        groups:
            Explicit smooth-switching groups as collections of use-case
            names.  When omitted, ``switching_graph`` is consulted; when
            that is also omitted every use-case forms its own group (fully
            re-configurable NoC).
        switching_graph:
            A :class:`SwitchingGraph` whose connected components define the
            groups (Algorithm 1).
        method_name:
            Recorded in the result (the worst-case baseline re-uses this
            engine with a different name).

        Returns
        -------
        MappingResult
            The smallest topology, shared core mapping and per-use-case
            configurations.

        Raises
        ------
        MappingError
            When no topology up to ``config.max_switches`` switches can
            satisfy every use-case's constraints.
        """
        use_cases.validate()
        resolved_groups = self._resolve_groups(use_cases, groups, switching_graph)
        requirements = [
            GroupRequirement(group_id, [use_cases[name] for name in sorted(group)])
            for group_id, group in enumerate(resolved_groups)
        ]
        return self.map_requirements(
            list(use_cases.all_core_names()),
            requirements,
            _Worklist(requirements),
            resolved_groups,
            method_name,
        )

    def map_requirements(
        self,
        all_core_names: Sequence[str],
        requirements: Sequence[GroupRequirement],
        worklist: _Worklist,
        resolved_groups: Tuple[FrozenSet[str], ...],
        method_name: str = "unified",
    ) -> MappingResult:
        """Run the outer topology-growth loop over prebuilt requirements.

        This is the engine-facing entry point: :class:`MappingEngine` caches
        ``requirements`` and ``worklist`` per spec hash and grouping, so
        repeated mappings of the same specification skip the aggregation and
        sorting phases entirely.  Semantics are identical to :meth:`map`.
        """
        if self.config.enable_quick_infeasibility_check:
            self._quick_infeasibility_check(requirements)
        attempted: List[str] = []
        for topology in self._topology_schedule(len(all_core_names)):
            attempted.append(topology.name)
            outcome = self._attempt(topology, all_core_names, requirements, worklist)
            if outcome is not None:
                core_mapping, configurations = outcome
                return MappingResult(
                    method=method_name,
                    topology=topology,
                    params=self.params,
                    config=self.config,
                    core_mapping=core_mapping,
                    groups=resolved_groups,
                    configurations=configurations,
                    attempted_topologies=attempted,
                )
        use_case_count = sum(len(req.member_names) for req in requirements)
        raise MappingError(
            f"no topology with up to {self.config.max_switches} switches satisfies "
            f"the constraints of {use_case_count} use-case(s)",
            largest_topology=attempted[-1] if attempted else None,
        )

    # ------------------------------------------------------------------ #
    # group resolution and feasibility pre-checks
    # ------------------------------------------------------------------ #
    def _resolve_groups(
        self,
        use_cases: UseCaseSet,
        groups: GroupSpec,
        switching_graph: Optional[SwitchingGraph],
    ) -> Tuple[FrozenSet[str], ...]:
        if groups is not None and switching_graph is not None:
            raise ConfigurationError("pass either explicit groups or a switching graph, not both")
        if groups is None and switching_graph is None:
            return tuple(frozenset({name}) for name in use_cases.names)
        if switching_graph is not None:
            resolved = [frozenset(group) for group in switching_graph.groups()]
        else:
            resolved = [frozenset(group) for group in groups or ()]
        covered: Set[str] = set()
        for group in resolved:
            for name in group:
                if name not in use_cases:
                    raise SpecificationError(f"group references unknown use-case {name!r}")
                if name in covered:
                    raise SpecificationError(f"use-case {name!r} appears in more than one group")
                covered.add(name)
        missing = [name for name in use_cases.names if name not in covered]
        resolved.extend(frozenset({name}) for name in missing)
        return tuple(resolved)

    def _quick_infeasibility_check(self, requirements: Sequence[GroupRequirement]) -> None:
        """Fail fast when no topology of any size could carry the traffic.

        Every flow must cross its source core's NI injection link and its
        destination core's NI ejection link, whose capacity equals one link
        capacity regardless of topology size.  If any group requires more
        than that from a single core, growing the mesh cannot help — this is
        what makes the worst-case baseline fail outright on the 40-use-case
        benchmarks in the paper.
        """
        capacity = self.params.link_capacity
        for requirement in requirements:
            for req in requirement.pair_requirements:
                if req.bandwidth > capacity + 1e-9:
                    raise MappingError(
                        f"flow {req.source}->{req.destination} needs "
                        f"{req.bandwidth:.3g} B/s which exceeds the link capacity "
                        f"{capacity:.3g} B/s at {self.params.frequency_hz / 1e6:.0f} MHz",
                        largest_topology=None,
                    )
            egress, ingress = requirement.core_loads()
            for core, load in egress.items():
                if load > capacity + 1e-9:
                    raise MappingError(
                        f"core {core!r} must source {load:.3g} B/s in group "
                        f"{requirement.group_id}, exceeding its NI injection capacity "
                        f"{capacity:.3g} B/s; no topology size can fix this",
                        largest_topology=None,
                    )
            for core, load in ingress.items():
                if load > capacity + 1e-9:
                    raise MappingError(
                        f"core {core!r} must sink {load:.3g} B/s in group "
                        f"{requirement.group_id}, exceeding its NI ejection capacity "
                        f"{capacity:.3g} B/s; no topology size can fix this",
                        largest_topology=None,
                    )

    def _topology_schedule(self, core_count: int) -> Iterable[Topology]:
        """The outer-loop topology growth schedule of Algorithm 2."""
        limit = self.params.max_cores_per_switch
        kind = self.params.topology_kind
        if kind == "ring":
            sizes = range(max(1, self.config.min_switches), self.config.max_switches + 1)
            for count in sizes:
                if limit is not None and count * limit < core_count:
                    continue
                yield Topology.ring(count)
            return
        builder = Topology.mesh if kind == "mesh" else Topology.torus
        for rows, cols in mesh_growth_schedule(self.config.max_switches):
            count = rows * cols
            if count < self.config.min_switches:
                continue
            if limit is not None and count * limit < core_count:
                continue
            yield builder(rows, cols)

    # ------------------------------------------------------------------ #
    # one topology attempt
    # ------------------------------------------------------------------ #
    def map_with_placement(
        self,
        use_cases: UseCaseSet,
        topology: Topology,
        placement: Mapping[str, int],
        groups: GroupSpec = None,
        switching_graph: Optional[SwitchingGraph] = None,
        method_name: str = "unified-fixed-placement",
        validate: bool = True,
    ) -> MappingResult:
        """Map a design onto a *fixed* topology and core placement.

        Used by the refinement passes (:mod:`repro.optimize`), which explore
        alternative placements by swapping cores: path selection and slot
        reservation are re-run from scratch for the given placement.  Such
        callers validate the design once up front and pass
        ``validate=False`` to skip re-validation on every candidate.

        Raises :class:`MappingError` when the placement cannot satisfy every
        use-case's constraints on this topology.
        """
        if validate:
            use_cases.validate()
        resolved_groups = self._resolve_groups(use_cases, groups, switching_graph)
        requirements = [
            GroupRequirement(group_id, [use_cases[name] for name in sorted(group)])
            for group_id, group in enumerate(resolved_groups)
        ]
        outcome = self._attempt(
            topology, list(use_cases.all_core_names()), requirements,
            _Worklist(requirements), initial_placement=placement,
        )
        if outcome is None:
            raise MappingError(
                f"placement is infeasible on topology {topology.name!r}",
                largest_topology=topology.name,
            )
        core_mapping, configurations = outcome
        return MappingResult(
            method=method_name,
            topology=topology,
            params=self.params,
            config=self.config,
            core_mapping=core_mapping,
            groups=resolved_groups,
            configurations=configurations,
            attempted_topologies=(topology.name,),
        )

    def evaluate_group_fixed(
        self,
        topology: Topology,
        group_id: int,
        plan: Sequence[Tuple[_PairRequirement, Tuple[Tuple[str, Flow], ...]]],
        placement: Mapping[str, int],
    ) -> Optional[List[PairPlacement]]:
        """Evaluate one configuration group under a complete core placement.

        ``plan`` is the group's slice of the worklist's placement sequence,
        each entry pairing the aggregated requirement with the (member name,
        member flow) records to emit for it.  Returns one
        :class:`PairPlacement` per plan item (in plan order), or ``None``
        when the group cannot be mapped — exactly the decisions
        :meth:`_attempt` makes for this group when every endpoint is
        pre-placed:

        * with a complete placement the group's resource state evolves
          independently of every other group, so evaluating it alone is
          exact (this is what makes per-group caching in the engine sound);
        * when a pair has a single candidate path, ranking by cost is
          skipped: the reservation plan performs a strict superset of the
          path-cost feasibility checks, so attempting the reservation
          directly accepts and rejects in exactly the same cases;
        * with several candidates, ranking by (cost, path) and trying the
          cheapest reservable candidate first replays
          ``PathSelector.select_least_cost`` exactly (its ``min`` is the
          first element of the stable full sort).
        """
        selector = self._selector_for(topology)
        state = self._pristine_for(topology).copy(name=f"group-{group_id}")
        seen: Set[str] = set()
        seed_items: List[Tuple[str, int]] = []
        for req, _members in plan:
            for core in (req.source, req.destination):
                if core not in seen:
                    seen.add(core)
                    seed_items.append((core, placement[core]))
        state.seed_cores(seed_items)
        budgets = self._budgets_for(plan)
        candidate_paths = selector.candidate_paths
        path_cost = state.path_cost
        reserve_unrecorded = state.reserve_unrecorded
        config = self.config
        entries: List[PairPlacement] = []
        for index, (req, members) in enumerate(plan):
            max_hops = budgets[index]
            if max_hops is not None and max_hops < 0:
                return None
            bandwidth = req.bandwidth
            guaranteed = req.guaranteed
            assignment = None
            paths = candidate_paths(placement[req.source], placement[req.destination])
            if len(paths) == 1:
                path = paths[0]
                if max_hops is None or len(path) - 1 <= max_hops:
                    assignment = reserve_unrecorded(
                        req.flow_id, req.source, req.destination, path,
                        bandwidth, guaranteed=guaranteed,
                    )
            else:
                ranked: List[Tuple[float, Tuple[int, ...]]] = []
                for path in paths:
                    if max_hops is not None and len(path) - 1 > max_hops:
                        continue
                    cost = path_cost(path, bandwidth, config, guaranteed=guaranteed)
                    if cost != INFEASIBLE_COST:
                        ranked.append((cost, path))
                ranked.sort()
                for _cost, path in ranked:
                    assignment = reserve_unrecorded(
                        req.flow_id, req.source, req.destination, path,
                        bandwidth, guaranteed=guaranteed,
                    )
                    if assignment is not None:
                        break
            if assignment is None:
                return None
            hops = len(path) - 1
            entries.append(PairPlacement(
                members=members,
                switch_path=path,
                link_slots=assignment,
                cost_terms=tuple(flow.bandwidth * hops for _name, flow in members),
            ))
        return entries

    def _attempt(
        self,
        topology: Topology,
        all_cores: Sequence[str],
        requirements: Sequence[GroupRequirement],
        worklist: _Worklist,
        initial_placement: Optional[Mapping[str, int]] = None,
    ) -> Optional[Tuple[Dict[str, int], Dict[str, UseCaseConfiguration]]]:
        """Try to map every flow onto one fixed topology.

        Returns ``None`` when some flow cannot be placed (the caller then
        grows the topology); otherwise returns the core mapping and the
        per-use-case configurations.  ``initial_placement`` pre-attaches
        cores to switches (used by :meth:`map_with_placement`).
        """
        selector = self._selector_for(topology)
        pristine = self._pristine_for(topology)
        states: Dict[int, ResourceState] = {
            requirement.group_id: pristine.copy(name=f"group-{requirement.group_id}")
            for requirement in requirements
        }
        configurations: Dict[str, UseCaseConfiguration] = {}
        for requirement in requirements:
            for name in requirement.member_names:
                configurations[name] = UseCaseConfiguration(name, requirement.group_id)

        # Step 2 (bandwidth-sorted items plus lookup indexes) was computed
        # once by the caller and is shared across topology attempts.
        items = worklist.items
        by_pair = worklist.by_pair
        position_of = worklist.position_of

        core_mapping: Dict[str, int] = {}
        # Used by the placement heuristic to derive the target core spacing.
        self._core_count_hint = len(all_cores)
        acct = _AttemptAccounting(topology, worklist)
        self._acct = acct
        try:
            if initial_placement is not None:
                try:
                    for core, switch in initial_placement.items():
                        self._attach_everywhere(core, switch, core_mapping, states)
                except ResourceError:
                    return None

            # The pending set is the bandwidth-sorted ``items`` list with lazy
            # deletion: ``done`` flags placed requirements, ``head`` tracks the
            # first live entry and the accounting heap yields the first live
            # requirement with a mapped endpoint — both O(log n) per step
            # where the seed rebuilt an O(n) list per placed pair.
            done = [False] * len(items)
            remaining = len(items)
            head = 0
            prefer_configured = self.config.prefer_mapped_endpoints
            core_count = len(all_cores)
            preferred = acct.preferred
            while remaining:
                # Step 3: choose the largest remaining flow, preferring flows
                # with already-mapped endpoints while unmapped cores remain.
                chosen: Optional[_PairRequirement] = None
                if prefer_configured and core_mapping and len(core_mapping) < core_count:
                    while preferred:
                        position = heapq.heappop(preferred)
                        if not done[position]:
                            chosen = items[position]
                            break
                if chosen is None:
                    while done[head]:
                        head += 1
                    chosen = items[head]
                # Steps 4-6: place this pair in the chosen group first, then in
                # every other group that communicates between the same cores.
                ordered = by_pair[chosen.pair]
                rest = [req for req in ordered if req is not chosen]
                for req in [chosen] + rest:
                    position = position_of[req]
                    if done[position]:
                        continue
                    success = self._place_pair(
                        req, states[req.group_id], selector, core_mapping, states,
                        requirements, configurations,
                    )
                    if not success:
                        return None
                    done[position] = True
                    remaining -= 1

            # Attach cores that have no traffic at all so the mapping is complete.
            for core in all_cores:
                if core not in core_mapping:
                    switch = self._switch_with_room(topology, core_mapping)
                    if switch is None:
                        return None
                    self._attach_everywhere(core, switch, core_mapping, states)
            return core_mapping, configurations
        finally:
            self._acct = None

    # ------------------------------------------------------------------ #
    # placing a single pair requirement
    # ------------------------------------------------------------------ #
    def _place_pair(
        self,
        req: _PairRequirement,
        state: ResourceState,
        selector: PathSelector,
        core_mapping: Dict[str, int],
        states: Mapping[int, ResourceState],
        requirements: Sequence[GroupRequirement],
        configurations: Dict[str, UseCaseConfiguration],
    ) -> bool:
        max_hops = self._hop_budget(req)
        if max_hops is not None and max_hops < 0:
            return False
        source_switch = core_mapping.get(req.source)
        destination_switch = core_mapping.get(req.destination)
        flow_id = req.flow_id

        if source_switch is None or destination_switch is None:
            placement = self._choose_placement(
                req, state, selector, core_mapping, max_hops
            )
            if placement is None:
                return False
            source_switch, destination_switch, path = placement
            if req.source not in core_mapping:
                self._attach_everywhere(req.source, source_switch, core_mapping, states)
            if req.destination not in core_mapping:
                self._attach_everywhere(req.destination, destination_switch, core_mapping, states)
            try:
                reservation = state.reserve(
                    flow_id, req.source, req.destination, path, req.bandwidth,
                    guaranteed=req.guaranteed,
                )
            except ResourceError:
                return False
        else:
            selection = selector.select_least_cost(
                state,
                req.source,
                req.destination,
                req.bandwidth,
                guaranteed=req.guaranteed,
                max_hops=max_hops,
            )
            if selection is None:
                return False
            path, _cost = selection
            reservation = state.reserve(
                flow_id, req.source, req.destination, path, req.bandwidth,
                guaranteed=req.guaranteed,
            )

        # Record the allocation for every member use-case that has this flow,
        # carrying the member's own bandwidth/latency (the shared path and
        # slot assignment come from the group configuration).
        requirement = requirements[req.group_id]
        for use_case in requirement.members:
            flow = use_case.flow_between(req.source, req.destination)
            if flow is None:
                continue
            configurations[use_case.name].add(
                FlowAllocation(
                    use_case=use_case.name,
                    flow=flow,
                    switch_path=reservation.switch_path,
                    link_slots=dict(reservation.link_slots),
                )
            )
        return True

    #: number of evaluation plans whose hop budgets are kept per mapper
    _BUDGET_CACHE_SIZE = 64

    def _budgets_for(self, plan) -> Tuple[Optional[int], ...]:
        """Per-entry hop budgets of one evaluation plan, computed once."""
        key = id(plan)
        entry = self._plan_budget_cache.get(key)
        if entry is not None and entry[0] is plan:
            self._plan_budget_cache.move_to_end(key)
            return entry[1]
        budgets = tuple(self._hop_budget(req) for req, _members in plan)
        self._plan_budget_cache[key] = (plan, budgets)
        if len(self._plan_budget_cache) > self._BUDGET_CACHE_SIZE:
            self._plan_budget_cache.popitem(last=False)
        return budgets

    def _hop_budget(self, req: _PairRequirement) -> Optional[int]:
        """Maximum hop count allowed by the pair's latency constraint."""
        if not self.config.check_latency or not req.guaranteed:
            return None
        key = (req.bandwidth, req.latency)
        cache = self._hop_budget_cache
        if key in cache:
            return cache[key]
        owned = slots_needed_cached(
            req.bandwidth, self.params.link_capacity, self.params.slot_table_size
        )
        budget = latency_hop_budget(req.latency, owned, self.params)
        cache[key] = budget
        return budget

    def _choose_placement(
        self,
        req: _PairRequirement,
        state: ResourceState,
        selector: PathSelector,
        core_mapping: Mapping[str, int],
        max_hops: Optional[int],
    ) -> Optional[Tuple[int, int, Tuple[int, ...]]]:
        """Pick switches for unmapped endpoints and the path between them.

        Implements the paper's "map them onto the NIs on the ends of the
        chosen path": every admissible (source switch, destination switch)
        combination is scored by the cheapest candidate path between the two
        switches in the group's resource state, and the overall cheapest
        combination wins.
        """
        topology = state.topology
        source_fixed = core_mapping.get(req.source)
        destination_fixed = core_mapping.get(req.destination)
        # Anchor the candidate pools near the already-placed counterpart (or
        # near the centroid of everything placed so far) so the pool offers
        # spatially compact, routing-diverse options instead of degenerating
        # into one row of a large mesh.
        anchor = source_fixed if source_fixed is not None else destination_fixed
        if anchor is None:
            anchor = self._centroid_switch(topology, core_mapping)
        source_candidates = (
            [source_fixed]
            if source_fixed is not None
            else self._placement_candidates(topology, core_mapping, anchor)
        )
        destination_candidates = (
            [destination_fixed]
            if destination_fixed is not None
            else self._placement_candidates(topology, core_mapping, anchor)
        )
        if not source_candidates or not destination_candidates:
            return None

        best: Optional[Tuple[float, int, int, Tuple[int, ...]]] = None
        for source_switch in source_candidates:
            for destination_switch in destination_candidates:
                if (
                    source_switch == destination_switch
                    and req.source != req.destination
                    and source_fixed is None
                    and destination_fixed is None
                ):
                    # Both cores on one switch: allowed only if the switch has
                    # room for two more cores.
                    limit = self.params.max_cores_per_switch
                    occupied = self._acct.occupancy[source_switch]
                    if limit is not None and occupied + 2 > limit:
                        continue
                for path in selector.candidate_paths(source_switch, destination_switch):
                    if max_hops is not None and len(path) - 1 > max_hops:
                        continue
                    cost = state.path_cost(
                        path, req.bandwidth, self.config, guaranteed=req.guaranteed
                    )
                    if cost == INFEASIBLE_COST:
                        continue
                    key = (cost, source_switch, destination_switch, path)
                    if best is None or key < best:
                        best = key
        if best is None:
            return None
        _, source_switch, destination_switch, path = best
        return source_switch, destination_switch, path

    def _placement_candidates(
        self,
        topology: Topology,
        core_mapping: Mapping[str, int],
        anchor: Optional[int] = None,
    ) -> List[int]:
        """Switches that can still accept a core, closest to the anchor first.

        The anchor is the switch of the already-mapped flow endpoint (or the
        centroid of all placed cores); ordering candidates by distance from
        it keeps the placement spatially compact and, crucially, keeps path
        diversity available on large meshes — a pool of the N least-occupied
        switches alone would line the cores up along the lowest switch
        indices and starve colinear pairs of alternative minimal paths.
        """
        limit = self.params.max_cores_per_switch
        acct = self._acct
        assert acct is not None and acct.topology is topology, (
            "placement accounting not initialised for this topology"
        )
        occupancy = acct.occupancy
        candidates = [
            index
            for index, count in occupancy.items()
            if limit is None or count < limit
        ]
        if anchor is None:
            anchor = self._centroid_switch(topology, core_mapping)
        distances = {
            index: self._switch_distance(topology, anchor, index) for index in candidates
        }
        # Larger topologies are only useful if the cores actually spread out
        # over them (that is what adds link capacity between the cores), so
        # aim for an inter-core spacing proportional to the available area.
        spacing = self._target_spacing(topology, core_mapping)
        nearest_core = (
            acct.nearest_core
            if acct.nearest_core is not None
            else {index: spacing for index in candidates}
        )
        # Least-occupied first so cores spread over distinct switches, then
        # prefer switches whose distance to the nearest placed core matches
        # the target spacing, then stay close to the anchor.
        candidates.sort(
            key=lambda index: (
                occupancy[index],
                abs(nearest_core[index] - spacing),
                distances[index],
                index,
            )
        )
        return candidates[: self.config.placement_candidates]

    def _target_spacing(self, topology: Topology, core_mapping: Mapping[str, int]) -> int:
        """Desired distance between neighbouring cores on this topology.

        Roughly ``sqrt(switches / cores)``: on a mesh just big enough to host
        the cores this is 1 (adjacent placement); on the large meshes the
        worst-case baseline is forced to, cores spread out so the links
        between them actually add capacity.
        """
        cores_total = max(1, len(core_mapping) + 1)
        # Estimate with the full core count once known; fall back to the
        # number already placed plus one during the first placements.
        estimated = max(cores_total, getattr(self, "_core_count_hint", cores_total))
        ratio = topology.switch_count / estimated
        return max(1, int(round(ratio ** 0.5)))

    @staticmethod
    def _switch_distance(topology: Topology, first: int, second: int) -> int:
        """Hop distance between two switches (Manhattan on grids)."""
        a = topology.switch(first)
        b = topology.switch(second)
        if a.position is not None and b.position is not None:
            return abs(a.row - b.row) + abs(a.col - b.col)
        return topology.shortest_hop_count(first, second)

    @staticmethod
    def _centroid_switch(topology: Topology, core_mapping: Mapping[str, int]) -> int:
        """The switch nearest the centroid of all placed cores (mesh centre when empty)."""
        switches = topology.switches
        positioned = all(sw.position is not None for sw in switches)
        if not positioned:
            return switches[len(switches) // 2].index
        if core_mapping:
            rows = [topology.switch(sw).row for sw in core_mapping.values()]
            cols = [topology.switch(sw).col for sw in core_mapping.values()]
            target = (sum(rows) / len(rows), sum(cols) / len(cols))
        else:
            rows = [sw.row for sw in switches]
            cols = [sw.col for sw in switches]
            target = (sum(rows) / len(rows), sum(cols) / len(cols))
        best = min(
            switches,
            key=lambda sw: (abs(sw.row - target[0]) + abs(sw.col - target[1]), sw.index),
        )
        return best.index

    def _switch_with_room(
        self, topology: Topology, core_mapping: Mapping[str, int]
    ) -> Optional[int]:
        candidates = self._placement_candidates(topology, core_mapping)
        return candidates[0] if candidates else None

    def _attach_everywhere(
        self,
        core: str,
        switch: int,
        core_mapping: Dict[str, int],
        states: Mapping[int, ResourceState],
    ) -> None:
        """Attach a core to a switch in the shared mapping and every group state."""
        core_mapping[core] = switch
        for state in states.values():
            state.attach_core(core, switch)
        if self._acct is not None:
            self._acct.on_attach(core, switch)


def map_use_cases(
    use_cases: UseCaseSet,
    params: NoCParameters | None = None,
    config: MapperConfig | None = None,
    groups: GroupSpec = None,
    switching_graph: Optional[SwitchingGraph] = None,
) -> MappingResult:
    """Convenience wrapper around :class:`UnifiedMapper` for one-shot mapping."""
    mapper = UnifiedMapper(params=params, config=config)
    return mapper.map(use_cases, groups=groups, switching_graph=switching_graph)
