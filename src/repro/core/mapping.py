"""Unified multi-use-case mapping, path selection and slot reservation.

This module implements Algorithm 2 of the paper — the primary contribution:

1. Start from the smallest topology (a single switch) and grow it until a
   valid mapping exists (outer loop).
2. Sort the traffic flows of *all* use-cases together in non-increasing
   bandwidth order.
3. Repeatedly pick the largest remaining flow — preferring flows whose
   source or destination core is already mapped — and
4. choose a least-cost path for it; if its endpoints are unmapped, map them
   onto the switches at the ends of the chosen path.  Reserve bandwidth and
   TDMA slots for the flow.
5. For every *other* use-case that has a flow between the same pair of
   cores, select a least-cost path in **that use-case's own resource state**
   and reserve its resources there.  Use-cases inside the same
   smooth-switching group share one configuration, so their reservation is
   made once, in the group's shared state, sized for the largest bandwidth
   requirement among the group members.
6. Repeat until every flow of every use-case is mapped; if some flow cannot
   be placed, grow the topology and start over.

The key departure from the worst-case baseline (ref [25]) is step 5: each
use-case (or each smooth-switching group) owns an independent
:class:`~repro.noc.resources.ResourceState`, so traffic of use-cases that
never run simultaneously does not compete for the same bandwidth and slots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.result import FlowAllocation, MappingResult, UseCaseConfiguration
from repro.core.switching import SwitchingGraph
from repro.core.usecase import Flow, TrafficClass, UseCase, UseCaseSet
from repro.exceptions import ConfigurationError, MappingError, ResourceError, SpecificationError
from repro.noc.resources import INFEASIBLE_COST, ResourceState
from repro.noc.routing import PathSelector
from repro.noc.slot_table import slots_needed
from repro.noc.topology import Topology, mesh_growth_schedule
from repro.params import MapperConfig, NoCParameters
from repro.perf.latency import latency_hop_budget

__all__ = ["UnifiedMapper", "map_use_cases", "GroupRequirement"]

GroupSpec = Optional[Sequence[Iterable[str]]]


@dataclass(frozen=True)
class _PairRequirement:
    """Aggregated requirement of one core pair within one configuration group."""

    group_id: int
    source: str
    destination: str
    bandwidth: float
    latency: float
    guaranteed: bool

    @property
    def pair(self) -> Tuple[str, str]:
        return (self.source, self.destination)


class GroupRequirement:
    """Per-pair aggregated traffic requirements of one smooth-switching group.

    Use-cases inside a group share one NoC configuration, so the group's slot
    tables must accommodate — for every core pair used by any member — the
    *largest* bandwidth and the *tightest* latency any member requires for
    that pair (the same rule the paper applies in step 6 of Algorithm 2).
    """

    def __init__(self, group_id: int, members: Sequence[UseCase]) -> None:
        self.group_id = group_id
        self.members: Tuple[UseCase, ...] = tuple(members)
        self.member_names: Tuple[str, ...] = tuple(uc.name for uc in members)
        self._pairs: Dict[Tuple[str, str], _PairRequirement] = {}
        for use_case in members:
            for flow in use_case.flows:
                existing = self._pairs.get(flow.pair)
                guaranteed = flow.traffic_class == TrafficClass.GUARANTEED
                if existing is None:
                    self._pairs[flow.pair] = _PairRequirement(
                        group_id=group_id,
                        source=flow.source,
                        destination=flow.destination,
                        bandwidth=flow.bandwidth,
                        latency=flow.latency,
                        guaranteed=guaranteed,
                    )
                else:
                    self._pairs[flow.pair] = _PairRequirement(
                        group_id=group_id,
                        source=flow.source,
                        destination=flow.destination,
                        bandwidth=max(existing.bandwidth, flow.bandwidth),
                        latency=min(existing.latency, flow.latency),
                        guaranteed=existing.guaranteed or guaranteed,
                    )

    @property
    def pair_requirements(self) -> Tuple[_PairRequirement, ...]:
        """All aggregated pair requirements of this group."""
        return tuple(self._pairs.values())

    def requirement_for(self, pair: Tuple[str, str]) -> Optional[_PairRequirement]:
        """The aggregated requirement of one core pair, or ``None``."""
        return self._pairs.get(pair)

    def core_loads(self) -> Tuple[Dict[str, float], Dict[str, float]]:
        """(egress, ingress) aggregated bandwidth per core for this group."""
        egress: Dict[str, float] = {}
        ingress: Dict[str, float] = {}
        for req in self._pairs.values():
            egress[req.source] = egress.get(req.source, 0.0) + req.bandwidth
            ingress[req.destination] = ingress.get(req.destination, 0.0) + req.bandwidth
        return egress, ingress


class UnifiedMapper:
    """The paper's unified mapping / path-selection / slot-reservation engine."""

    def __init__(
        self,
        params: NoCParameters | None = None,
        config: MapperConfig | None = None,
    ) -> None:
        self.params = params or NoCParameters()
        self.config = config or MapperConfig()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def map(
        self,
        use_cases: UseCaseSet,
        groups: GroupSpec = None,
        switching_graph: Optional[SwitchingGraph] = None,
        method_name: str = "unified",
    ) -> MappingResult:
        """Map a multi-use-case design onto the smallest feasible topology.

        Parameters
        ----------
        use_cases:
            The (already compound-expanded) use-case set.
        groups:
            Explicit smooth-switching groups as collections of use-case
            names.  When omitted, ``switching_graph`` is consulted; when
            that is also omitted every use-case forms its own group (fully
            re-configurable NoC).
        switching_graph:
            A :class:`SwitchingGraph` whose connected components define the
            groups (Algorithm 1).
        method_name:
            Recorded in the result (the worst-case baseline re-uses this
            engine with a different name).

        Returns
        -------
        MappingResult
            The smallest topology, shared core mapping and per-use-case
            configurations.

        Raises
        ------
        MappingError
            When no topology up to ``config.max_switches`` switches can
            satisfy every use-case's constraints.
        """
        use_cases.validate()
        resolved_groups = self._resolve_groups(use_cases, groups, switching_graph)
        requirements = [
            GroupRequirement(group_id, [use_cases[name] for name in sorted(group)])
            for group_id, group in enumerate(resolved_groups)
        ]
        if self.config.enable_quick_infeasibility_check:
            self._quick_infeasibility_check(requirements)

        core_names = list(use_cases.all_core_names())
        attempted: List[str] = []
        for topology in self._topology_schedule(len(core_names)):
            attempted.append(topology.name)
            outcome = self._attempt(topology, use_cases, requirements, resolved_groups)
            if outcome is not None:
                core_mapping, configurations = outcome
                return MappingResult(
                    method=method_name,
                    topology=topology,
                    params=self.params,
                    config=self.config,
                    core_mapping=core_mapping,
                    groups=resolved_groups,
                    configurations=configurations,
                    attempted_topologies=attempted,
                )
        raise MappingError(
            f"no topology with up to {self.config.max_switches} switches satisfies "
            f"the constraints of {len(use_cases)} use-case(s)",
            largest_topology=attempted[-1] if attempted else None,
        )

    # ------------------------------------------------------------------ #
    # group resolution and feasibility pre-checks
    # ------------------------------------------------------------------ #
    def _resolve_groups(
        self,
        use_cases: UseCaseSet,
        groups: GroupSpec,
        switching_graph: Optional[SwitchingGraph],
    ) -> Tuple[FrozenSet[str], ...]:
        if groups is not None and switching_graph is not None:
            raise ConfigurationError("pass either explicit groups or a switching graph, not both")
        if groups is None and switching_graph is None:
            return tuple(frozenset({name}) for name in use_cases.names)
        if switching_graph is not None:
            resolved = [frozenset(group) for group in switching_graph.groups()]
        else:
            resolved = [frozenset(group) for group in groups or ()]
        covered: Set[str] = set()
        for group in resolved:
            for name in group:
                if name not in use_cases:
                    raise SpecificationError(f"group references unknown use-case {name!r}")
                if name in covered:
                    raise SpecificationError(f"use-case {name!r} appears in more than one group")
                covered.add(name)
        missing = [name for name in use_cases.names if name not in covered]
        resolved.extend(frozenset({name}) for name in missing)
        return tuple(resolved)

    def _quick_infeasibility_check(self, requirements: Sequence[GroupRequirement]) -> None:
        """Fail fast when no topology of any size could carry the traffic.

        Every flow must cross its source core's NI injection link and its
        destination core's NI ejection link, whose capacity equals one link
        capacity regardless of topology size.  If any group requires more
        than that from a single core, growing the mesh cannot help — this is
        what makes the worst-case baseline fail outright on the 40-use-case
        benchmarks in the paper.
        """
        capacity = self.params.link_capacity
        for requirement in requirements:
            for req in requirement.pair_requirements:
                if req.bandwidth > capacity + 1e-9:
                    raise MappingError(
                        f"flow {req.source}->{req.destination} needs "
                        f"{req.bandwidth:.3g} B/s which exceeds the link capacity "
                        f"{capacity:.3g} B/s at {self.params.frequency_hz / 1e6:.0f} MHz",
                        largest_topology=None,
                    )
            egress, ingress = requirement.core_loads()
            for core, load in egress.items():
                if load > capacity + 1e-9:
                    raise MappingError(
                        f"core {core!r} must source {load:.3g} B/s in group "
                        f"{requirement.group_id}, exceeding its NI injection capacity "
                        f"{capacity:.3g} B/s; no topology size can fix this",
                        largest_topology=None,
                    )
            for core, load in ingress.items():
                if load > capacity + 1e-9:
                    raise MappingError(
                        f"core {core!r} must sink {load:.3g} B/s in group "
                        f"{requirement.group_id}, exceeding its NI ejection capacity "
                        f"{capacity:.3g} B/s; no topology size can fix this",
                        largest_topology=None,
                    )

    def _topology_schedule(self, core_count: int) -> Iterable[Topology]:
        """The outer-loop topology growth schedule of Algorithm 2."""
        limit = self.params.max_cores_per_switch
        kind = self.params.topology_kind
        if kind == "ring":
            sizes = range(max(1, self.config.min_switches), self.config.max_switches + 1)
            for count in sizes:
                if limit is not None and count * limit < core_count:
                    continue
                yield Topology.ring(count)
            return
        builder = Topology.mesh if kind == "mesh" else Topology.torus
        for rows, cols in mesh_growth_schedule(self.config.max_switches):
            count = rows * cols
            if count < self.config.min_switches:
                continue
            if limit is not None and count * limit < core_count:
                continue
            yield builder(rows, cols)

    # ------------------------------------------------------------------ #
    # one topology attempt
    # ------------------------------------------------------------------ #
    def map_with_placement(
        self,
        use_cases: UseCaseSet,
        topology: Topology,
        placement: Mapping[str, int],
        groups: GroupSpec = None,
        switching_graph: Optional[SwitchingGraph] = None,
        method_name: str = "unified-fixed-placement",
    ) -> MappingResult:
        """Map a design onto a *fixed* topology and core placement.

        Used by the refinement passes (:mod:`repro.optimize`), which explore
        alternative placements by swapping cores: path selection and slot
        reservation are re-run from scratch for the given placement.

        Raises :class:`MappingError` when the placement cannot satisfy every
        use-case's constraints on this topology.
        """
        use_cases.validate()
        resolved_groups = self._resolve_groups(use_cases, groups, switching_graph)
        requirements = [
            GroupRequirement(group_id, [use_cases[name] for name in sorted(group)])
            for group_id, group in enumerate(resolved_groups)
        ]
        outcome = self._attempt(
            topology, use_cases, requirements, resolved_groups,
            initial_placement=placement,
        )
        if outcome is None:
            raise MappingError(
                f"placement is infeasible on topology {topology.name!r}",
                largest_topology=topology.name,
            )
        core_mapping, configurations = outcome
        return MappingResult(
            method=method_name,
            topology=topology,
            params=self.params,
            config=self.config,
            core_mapping=core_mapping,
            groups=resolved_groups,
            configurations=configurations,
            attempted_topologies=(topology.name,),
        )

    def _attempt(
        self,
        topology: Topology,
        use_cases: UseCaseSet,
        requirements: Sequence[GroupRequirement],
        groups: Sequence[FrozenSet[str]],
        initial_placement: Optional[Mapping[str, int]] = None,
    ) -> Optional[Tuple[Dict[str, int], Dict[str, UseCaseConfiguration]]]:
        """Try to map every flow onto one fixed topology.

        Returns ``None`` when some flow cannot be placed (the caller then
        grows the topology); otherwise returns the core mapping and the
        per-use-case configurations.  ``initial_placement`` pre-attaches
        cores to switches (used by :meth:`map_with_placement`).
        """
        selector = PathSelector(topology, self.config)
        states: Dict[int, ResourceState] = {
            requirement.group_id: ResourceState(
                topology, self.params, name=f"group-{requirement.group_id}"
            )
            for requirement in requirements
        }
        configurations: Dict[str, UseCaseConfiguration] = {}
        group_index: Dict[str, int] = {}
        for requirement in requirements:
            for name in requirement.member_names:
                configurations[name] = UseCaseConfiguration(name, requirement.group_id)
                group_index[name] = requirement.group_id

        # Step 2: sort all aggregated pair requirements by bandwidth, largest first.
        items: List[_PairRequirement] = [
            req for requirement in requirements for req in requirement.pair_requirements
        ]
        items.sort(key=lambda req: (-req.bandwidth, req.source, req.destination, req.group_id))
        by_pair: Dict[Tuple[str, str], List[_PairRequirement]] = {}
        for req in items:
            by_pair.setdefault(req.pair, []).append(req)

        core_mapping: Dict[str, int] = {}
        all_cores = list(use_cases.all_core_names())
        # Used by the placement heuristic to derive the target core spacing.
        self._core_count_hint = len(all_cores)
        done: Set[Tuple[int, Tuple[str, str]]] = set()

        if initial_placement is not None:
            try:
                for core, switch in initial_placement.items():
                    self._attach_everywhere(core, switch, core_mapping, states)
            except ResourceError:
                return None

        pending = list(items)
        while pending:
            # Step 3: choose the largest remaining flow, preferring flows with
            # already-mapped endpoints while unmapped cores remain.
            index = self._next_item_index(pending, core_mapping, len(core_mapping) < len(all_cores))
            chosen = pending[index]
            if (chosen.group_id, chosen.pair) in done:
                pending.pop(index)
                continue
            # Steps 4-6: place this pair in the chosen group first, then in
            # every other group that communicates between the same cores.
            ordered = by_pair[chosen.pair]
            first = chosen
            rest = [req for req in ordered if req is not chosen]
            for req in [first] + rest:
                if (req.group_id, req.pair) in done:
                    continue
                success = self._place_pair(
                    req, states[req.group_id], selector, core_mapping, states, requirements,
                    configurations,
                )
                if not success:
                    return None
                done.add((req.group_id, req.pair))
            pending = [req for req in pending if (req.group_id, req.pair) not in done]

        # Attach cores that have no traffic at all so the mapping is complete.
        for core in all_cores:
            if core not in core_mapping:
                switch = self._switch_with_room(topology, core_mapping)
                if switch is None:
                    return None
                self._attach_everywhere(core, switch, core_mapping, states)
        return core_mapping, configurations

    def _next_item_index(
        self,
        pending: Sequence[_PairRequirement],
        core_mapping: Mapping[str, int],
        prefer_mapped: bool,
    ) -> int:
        """Index of the next pair requirement to place (paper step 3)."""
        if not prefer_mapped or not self.config.prefer_mapped_endpoints or not core_mapping:
            return 0
        for index, req in enumerate(pending):
            if req.source in core_mapping or req.destination in core_mapping:
                return index
        return 0

    # ------------------------------------------------------------------ #
    # placing a single pair requirement
    # ------------------------------------------------------------------ #
    def _place_pair(
        self,
        req: _PairRequirement,
        state: ResourceState,
        selector: PathSelector,
        core_mapping: Dict[str, int],
        states: Mapping[int, ResourceState],
        requirements: Sequence[GroupRequirement],
        configurations: Dict[str, UseCaseConfiguration],
    ) -> bool:
        max_hops = self._hop_budget(req)
        if max_hops is not None and max_hops < 0:
            return False
        source_switch = core_mapping.get(req.source)
        destination_switch = core_mapping.get(req.destination)
        flow_id = f"g{req.group_id}:{req.source}->{req.destination}"

        if source_switch is None or destination_switch is None:
            placement = self._choose_placement(
                req, state, selector, core_mapping, max_hops
            )
            if placement is None:
                return False
            source_switch, destination_switch, path = placement
            if req.source not in core_mapping:
                self._attach_everywhere(req.source, source_switch, core_mapping, states)
            if req.destination not in core_mapping:
                self._attach_everywhere(req.destination, destination_switch, core_mapping, states)
            try:
                reservation = state.reserve(
                    flow_id, req.source, req.destination, path, req.bandwidth,
                    guaranteed=req.guaranteed,
                )
            except ResourceError:
                return False
        else:
            selection = selector.select_least_cost(
                state,
                req.source,
                req.destination,
                req.bandwidth,
                guaranteed=req.guaranteed,
                max_hops=max_hops,
            )
            if selection is None:
                return False
            path, _cost = selection
            reservation = state.reserve(
                flow_id, req.source, req.destination, path, req.bandwidth,
                guaranteed=req.guaranteed,
            )

        # Record the allocation for every member use-case that has this flow,
        # carrying the member's own bandwidth/latency (the shared path and
        # slot assignment come from the group configuration).
        requirement = requirements[req.group_id]
        for use_case in requirement.members:
            flow = use_case.flow_between(req.source, req.destination)
            if flow is None:
                continue
            configurations[use_case.name].add(
                FlowAllocation(
                    use_case=use_case.name,
                    flow=flow,
                    switch_path=reservation.switch_path,
                    link_slots=dict(reservation.link_slots),
                )
            )
        return True

    def _hop_budget(self, req: _PairRequirement) -> Optional[int]:
        """Maximum hop count allowed by the pair's latency constraint."""
        if not self.config.check_latency or not req.guaranteed:
            return None
        owned = slots_needed(
            req.bandwidth, self.params.link_capacity, self.params.slot_table_size
        )
        return latency_hop_budget(req.latency, owned, self.params)

    def _choose_placement(
        self,
        req: _PairRequirement,
        state: ResourceState,
        selector: PathSelector,
        core_mapping: Mapping[str, int],
        max_hops: Optional[int],
    ) -> Optional[Tuple[int, int, Tuple[int, ...]]]:
        """Pick switches for unmapped endpoints and the path between them.

        Implements the paper's "map them onto the NIs on the ends of the
        chosen path": every admissible (source switch, destination switch)
        combination is scored by the cheapest candidate path between the two
        switches in the group's resource state, and the overall cheapest
        combination wins.
        """
        topology = state.topology
        source_fixed = core_mapping.get(req.source)
        destination_fixed = core_mapping.get(req.destination)
        # Anchor the candidate pools near the already-placed counterpart (or
        # near the centroid of everything placed so far) so the pool offers
        # spatially compact, routing-diverse options instead of degenerating
        # into one row of a large mesh.
        anchor = source_fixed if source_fixed is not None else destination_fixed
        if anchor is None:
            anchor = self._centroid_switch(topology, core_mapping)
        source_candidates = (
            [source_fixed]
            if source_fixed is not None
            else self._placement_candidates(topology, core_mapping, anchor)
        )
        destination_candidates = (
            [destination_fixed]
            if destination_fixed is not None
            else self._placement_candidates(topology, core_mapping, anchor)
        )
        if not source_candidates or not destination_candidates:
            return None

        best: Optional[Tuple[float, int, int, Tuple[int, ...]]] = None
        for source_switch in source_candidates:
            for destination_switch in destination_candidates:
                if (
                    source_switch == destination_switch
                    and req.source != req.destination
                    and source_fixed is None
                    and destination_fixed is None
                ):
                    # Both cores on one switch: allowed only if the switch has
                    # room for two more cores.
                    limit = self.params.max_cores_per_switch
                    occupied = sum(
                        1 for sw in core_mapping.values() if sw == source_switch
                    )
                    if limit is not None and occupied + 2 > limit:
                        continue
                for path in selector.candidate_paths(source_switch, destination_switch):
                    if max_hops is not None and len(path) - 1 > max_hops:
                        continue
                    cost = state.path_cost(
                        path, req.bandwidth, self.config, guaranteed=req.guaranteed
                    )
                    if cost == INFEASIBLE_COST:
                        continue
                    key = (cost, source_switch, destination_switch, path)
                    if best is None or key < best:
                        best = key
        if best is None:
            return None
        _, source_switch, destination_switch, path = best
        return source_switch, destination_switch, path

    def _placement_candidates(
        self,
        topology: Topology,
        core_mapping: Mapping[str, int],
        anchor: Optional[int] = None,
    ) -> List[int]:
        """Switches that can still accept a core, closest to the anchor first.

        The anchor is the switch of the already-mapped flow endpoint (or the
        centroid of all placed cores); ordering candidates by distance from
        it keeps the placement spatially compact and, crucially, keeps path
        diversity available on large meshes — a pool of the N least-occupied
        switches alone would line the cores up along the lowest switch
        indices and starve colinear pairs of alternative minimal paths.
        """
        limit = self.params.max_cores_per_switch
        occupancy: Dict[int, int] = {sw.index: 0 for sw in topology.switches}
        for switch in core_mapping.values():
            occupancy[switch] = occupancy.get(switch, 0) + 1
        candidates = [
            index
            for index, count in occupancy.items()
            if limit is None or count < limit
        ]
        if anchor is None:
            anchor = self._centroid_switch(topology, core_mapping)
        distances = {
            index: self._switch_distance(topology, anchor, index) for index in candidates
        }
        # Larger topologies are only useful if the cores actually spread out
        # over them (that is what adds link capacity between the cores), so
        # aim for an inter-core spacing proportional to the available area.
        spacing = self._target_spacing(topology, core_mapping)
        occupied_switches = set(core_mapping.values())
        if occupied_switches:
            nearest_core = {
                index: min(
                    self._switch_distance(topology, index, other)
                    for other in occupied_switches
                )
                for index in candidates
            }
        else:
            nearest_core = {index: spacing for index in candidates}
        # Least-occupied first so cores spread over distinct switches, then
        # prefer switches whose distance to the nearest placed core matches
        # the target spacing, then stay close to the anchor.
        candidates.sort(
            key=lambda index: (
                occupancy[index],
                abs(nearest_core[index] - spacing),
                distances[index],
                index,
            )
        )
        return candidates[: self.config.placement_candidates]

    def _target_spacing(self, topology: Topology, core_mapping: Mapping[str, int]) -> int:
        """Desired distance between neighbouring cores on this topology.

        Roughly ``sqrt(switches / cores)``: on a mesh just big enough to host
        the cores this is 1 (adjacent placement); on the large meshes the
        worst-case baseline is forced to, cores spread out so the links
        between them actually add capacity.
        """
        cores_total = max(1, len(core_mapping) + 1)
        # Estimate with the full core count once known; fall back to the
        # number already placed plus one during the first placements.
        estimated = max(cores_total, getattr(self, "_core_count_hint", cores_total))
        ratio = topology.switch_count / estimated
        return max(1, int(round(ratio ** 0.5)))

    @staticmethod
    def _switch_distance(topology: Topology, first: int, second: int) -> int:
        """Hop distance between two switches (Manhattan on grids)."""
        a = topology.switch(first)
        b = topology.switch(second)
        if a.position is not None and b.position is not None:
            return abs(a.row - b.row) + abs(a.col - b.col)
        return topology.shortest_hop_count(first, second)

    @staticmethod
    def _centroid_switch(topology: Topology, core_mapping: Mapping[str, int]) -> int:
        """The switch nearest the centroid of all placed cores (mesh centre when empty)."""
        switches = topology.switches
        positioned = all(sw.position is not None for sw in switches)
        if not positioned:
            return switches[len(switches) // 2].index
        if core_mapping:
            rows = [topology.switch(sw).row for sw in core_mapping.values()]
            cols = [topology.switch(sw).col for sw in core_mapping.values()]
            target = (sum(rows) / len(rows), sum(cols) / len(cols))
        else:
            rows = [sw.row for sw in switches]
            cols = [sw.col for sw in switches]
            target = (sum(rows) / len(rows), sum(cols) / len(cols))
        best = min(
            switches,
            key=lambda sw: (abs(sw.row - target[0]) + abs(sw.col - target[1]), sw.index),
        )
        return best.index

    def _switch_with_room(
        self, topology: Topology, core_mapping: Mapping[str, int]
    ) -> Optional[int]:
        candidates = self._placement_candidates(topology, core_mapping)
        return candidates[0] if candidates else None

    def _attach_everywhere(
        self,
        core: str,
        switch: int,
        core_mapping: Dict[str, int],
        states: Mapping[int, ResourceState],
    ) -> None:
        """Attach a core to a switch in the shared mapping and every group state."""
        core_mapping[core] = switch
        for state in states.values():
            state.attach_core(core, switch)


def map_use_cases(
    use_cases: UseCaseSet,
    params: NoCParameters | None = None,
    config: MapperConfig | None = None,
    groups: GroupSpec = None,
    switching_graph: Optional[SwitchingGraph] = None,
) -> MappingResult:
    """Convenience wrapper around :class:`UnifiedMapper` for one-shot mapping."""
    mapper = UnifiedMapper(params=params, config=config)
    return mapper.map(use_cases, groups=groups, switching_graph=switching_graph)
