"""Standalone re-validation of finished mappings against raw constraints.

:func:`validate_mapping` is the *referee* shared by the heuristic mapper, the
exact backend (:mod:`repro.optimize.ilp`) and the test suite.  Unlike
:func:`repro.perf.verification.verify_mapping` — which re-checks a result
against the use-case set it was produced from, including analytical latency
bounds and the cycle-level simulator — this checker needs nothing but the
:class:`~repro.core.result.MappingResult` itself and judges it against the raw
physical constraints, independently of the mapper's incremental accounting:

* **placement** — every core sits on an existing, alive switch, and no switch
  hosts more cores than ``max_cores_per_switch`` allows;
* **path connectivity** — every allocation's path starts and ends at the
  mapped endpoint switches and each hop uses a link that exists on the
  (possibly failure-degraded) topology, touching no downed switch;
* **slot exclusivity** — TDMA slot indices are in range, one slot set per
  traversed link, and no two flows of one smooth-switching group own the same
  slot on the same link (the same core pair shared across group members is
  the intended configuration sharing, not a collision);
* **bandwidth ceilings** — reserved slots cover each GT flow's bandwidth on
  every traversed link, and per-link / per-NI aggregate loads stay within the
  link capacity in every use-case;
* **deadlock rules** — per use-case, the channel dependency graph of the
  best-effort (wormhole-switched) paths is acyclic.  GT traffic is
  contention-free by TDMA construction and is exempt (see
  :mod:`repro.noc.deadlock`).

Every failed check produces a :class:`ValidationIssue` with a stable ``kind``
so callers (and the fuzz tests) can assert *which* constraint was violated,
not merely that one was.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.result import FlowAllocation, MappingResult
from repro.core.usecase import TrafficClass, UseCaseSet
from repro.exceptions import VerificationError
from repro.noc.deadlock import is_deadlock_free

__all__ = ["ValidationIssue", "ValidationReport", "validate_mapping"]


@dataclass(frozen=True)
class ValidationIssue:
    """One violated constraint, tagged with a stable machine-checkable kind.

    Kinds: ``"placement"``, ``"occupancy"``, ``"downed-switch"``, ``"path"``,
    ``"slot-range"``, ``"slot-collision"``, ``"bandwidth"``, ``"capacity"``,
    ``"deadlock"``, ``"missing"``.
    """

    use_case: str
    kind: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - formatting
        return f"[{self.kind}] {self.use_case}: {self.detail}"


@dataclass
class ValidationReport:
    """Outcome of re-validating one mapping result."""

    issues: List[ValidationIssue] = field(default_factory=list)
    checked_allocations: int = 0

    @property
    def ok(self) -> bool:
        """True when every constraint held."""
        return not self.issues

    def issues_of_kind(self, kind: str) -> Tuple[ValidationIssue, ...]:
        """All issues of one kind (``"slot-collision"``, ``"path"``, ...)."""
        return tuple(issue for issue in self.issues if issue.kind == kind)

    @property
    def kinds(self) -> Tuple[str, ...]:
        """Sorted distinct kinds present in the report."""
        return tuple(sorted({issue.kind for issue in self.issues}))

    def raise_if_failed(self) -> None:
        """Raise :class:`VerificationError` listing every issue, if any."""
        if self.issues:
            lines = "; ".join(str(issue) for issue in self.issues[:8])
            more = f" (+{len(self.issues) - 8} more)" if len(self.issues) > 8 else ""
            raise VerificationError(
                f"mapping failed validation with {len(self.issues)} issue(s): "
                f"{lines}{more}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "ok" if self.ok else f"{len(self.issues)} issue(s)"
        return f"ValidationReport({status}, checked_allocations={self.checked_allocations})"


def validate_mapping(
    result: MappingResult, use_cases: Optional[UseCaseSet] = None
) -> ValidationReport:
    """Re-verify a mapping result against the raw physical constraints.

    Parameters
    ----------
    result:
        Any mapping result — heuristic, refined, repaired or exact.  Its own
        embedded topology (already failure-degraded when the result was
        produced under failures) and parameters define the constraints.
    use_cases:
        Optional original use-case set.  When given, coverage is also
        checked: every flow of every use-case must have an allocation.
    """
    report = ValidationReport()
    _check_placement(result, report)
    group_of = {
        name: index for index, group in enumerate(result.groups) for name in group
    }
    for name, configuration in result.configurations.items():
        be_paths: List[Tuple[int, ...]] = []
        for allocation in configuration:
            report.checked_allocations += 1
            _check_path(result, name, allocation, report)
            _check_slots(result, name, allocation, report)
            if (
                allocation.flow.traffic_class != TrafficClass.GUARANTEED
                and allocation.hop_count >= 2
            ):
                be_paths.append(allocation.switch_path)
        _check_capacity(result, name, configuration, report)
        if be_paths and not is_deadlock_free(be_paths):
            report.issues.append(
                ValidationIssue(
                    name, "deadlock",
                    "best-effort paths induce a cyclic channel dependency graph",
                )
            )
    _check_slot_exclusivity(result, group_of, report)
    if use_cases is not None:
        _check_coverage(result, use_cases, report)
    return report


def _check_placement(result: MappingResult, report: ValidationReport) -> None:
    """Cores sit on existing, alive switches within the occupancy limit."""
    topology = result.topology
    occupancy: Dict[int, int] = {}
    for core, switch_index in sorted(result.core_mapping.items()):
        if not isinstance(switch_index, int) or not (
            0 <= switch_index < topology.switch_count
        ):
            report.issues.append(
                ValidationIssue(
                    "*", "placement",
                    f"core {core!r} is mapped to non-existent switch {switch_index}",
                )
            )
            continue
        if topology.is_switch_down(switch_index):
            report.issues.append(
                ValidationIssue(
                    "*", "downed-switch",
                    f"core {core!r} is attached to downed switch {switch_index}",
                )
            )
        occupancy[switch_index] = occupancy.get(switch_index, 0) + 1
    limit = result.params.max_cores_per_switch
    if limit is not None:
        for switch_index, count in sorted(occupancy.items()):
            if count > limit:
                report.issues.append(
                    ValidationIssue(
                        "*", "occupancy",
                        f"switch {switch_index} hosts {count} cores "
                        f"(limit {limit})",
                    )
                )


def _check_path(
    result: MappingResult,
    use_case: str,
    allocation: FlowAllocation,
    report: ValidationReport,
) -> None:
    """Endpoint consistency and hop-by-hop existence on the (degraded) topology."""
    topology = result.topology
    flow = allocation.flow
    path = allocation.switch_path
    if not path:
        report.issues.append(
            ValidationIssue(
                use_case, "path",
                f"flow {flow.source}->{flow.destination} has an empty path",
            )
        )
        return
    expected = (
        result.core_mapping.get(flow.source),
        result.core_mapping.get(flow.destination),
    )
    if path[0] != expected[0] or path[-1] != expected[1]:
        report.issues.append(
            ValidationIssue(
                use_case, "path",
                f"flow {flow.source}->{flow.destination} path {path[0]}..{path[-1]} "
                f"does not join the mapped switches {expected[0]}..{expected[1]}",
            )
        )
    for here, there in zip(path, path[1:]):
        if not topology.has_link(here, there):
            report.issues.append(
                ValidationIssue(
                    use_case, "path",
                    f"flow {flow.source}->{flow.destination} uses missing "
                    f"link ({here}, {there})",
                )
            )
    for switch_index in path:
        if 0 <= switch_index < topology.switch_count and topology.is_switch_down(
            switch_index
        ):
            report.issues.append(
                ValidationIssue(
                    use_case, "downed-switch",
                    f"flow {flow.source}->{flow.destination} routes through "
                    f"downed switch {switch_index}",
                )
            )


def _check_slots(
    result: MappingResult,
    use_case: str,
    allocation: FlowAllocation,
    report: ValidationReport,
) -> None:
    """Slot indices in range; GT reservations cover the flow bandwidth per link."""
    params = result.params
    flow = allocation.flow
    for link, slots in allocation.link_slots.items():
        for slot in slots:
            if not (0 <= slot < params.slot_table_size):
                report.issues.append(
                    ValidationIssue(
                        use_case, "slot-range",
                        f"flow {flow.source}->{flow.destination} reserves slot "
                        f"{slot} on link {link} outside the table of "
                        f"{params.slot_table_size}",
                    )
                )
    if flow.traffic_class != TrafficClass.GUARANTEED or allocation.hop_count == 0:
        return
    for link in allocation.links:
        provided = len(allocation.link_slots.get(link, ())) * params.slot_bandwidth
        if provided + 1e-9 < flow.bandwidth:
            report.issues.append(
                ValidationIssue(
                    use_case, "bandwidth",
                    f"flow {flow.source}->{flow.destination} needs "
                    f"{flow.bandwidth:.6g} B/s on link {link} but its slots "
                    f"provide only {provided:.6g} B/s",
                )
            )


def _check_capacity(result, use_case, configuration, report) -> None:
    """Per-link and per-NI aggregate bandwidth ceilings within one use-case."""
    capacity = result.params.link_capacity
    for link, load in sorted(configuration.link_loads().items()):
        if load > capacity + 1e-6:
            report.issues.append(
                ValidationIssue(
                    use_case, "capacity",
                    f"link {link} carries {load:.6g} B/s over its capacity "
                    f"{capacity:.6g} B/s",
                )
            )
    egress, ingress = configuration.core_loads()
    for label, loads in (("sources", egress), ("sinks", ingress)):
        for core, load in sorted(loads.items()):
            if load > capacity + 1e-6:
                report.issues.append(
                    ValidationIssue(
                        use_case, "capacity",
                        f"core {core!r} {label} {load:.6g} B/s over the NI "
                        f"capacity {capacity:.6g} B/s",
                    )
                )


def _check_slot_exclusivity(result, group_of, report) -> None:
    """No two flows of one group may own one slot on one link."""
    owners: Dict[Tuple[int, tuple, int], Tuple[str, str, str]] = {}
    for name, configuration in result.configurations.items():
        group_id = group_of.get(name, -1)
        for allocation in configuration:
            flow_key = (name, allocation.flow.source, allocation.flow.destination)
            for link, slots in allocation.link_slots.items():
                for slot in slots:
                    existing = owners.setdefault((group_id, link, slot), flow_key)
                    if existing is flow_key or existing[1:] == flow_key[1:]:
                        continue
                    report.issues.append(
                        ValidationIssue(
                            name, "slot-collision",
                            f"slot {slot} on link {link} is owned by both "
                            f"{existing} and {flow_key} within group {group_id}",
                        )
                    )


def _check_coverage(result, use_cases, report) -> None:
    """Every flow of every use-case must have an allocation."""
    for use_case in use_cases:
        configuration = result.configurations.get(use_case.name)
        for flow in use_case.flows:
            if (
                configuration is None
                or configuration.allocation_for(flow.source, flow.destination) is None
            ):
                report.issues.append(
                    ValidationIssue(
                        use_case.name, "missing",
                        f"flow {flow.source}->{flow.destination} has no allocation",
                    )
                )
