"""Result objects produced by the mapping algorithms.

A :class:`MappingResult` captures everything the later phases of the design
flow need: the topology that was finally large enough, the shared
core-to-switch mapping, the configuration groups and — per use-case — the
paths and TDMA slots of every flow (:class:`FlowAllocation`), bundled into a
:class:`UseCaseConfiguration`.

These objects are plain data holders plus read-only convenience queries;
they never mutate the resource states they were derived from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.usecase import Flow, UseCase, UseCaseSet
from repro.exceptions import SpecificationError
from repro.noc.topology import Link, Topology
from repro.params import MapperConfig, NoCParameters

__all__ = ["FlowAllocation", "UseCaseConfiguration", "MappingResult"]


@dataclass(frozen=True)
class FlowAllocation:
    """The path and slot-table entries one flow owns in one use-case.

    Attributes
    ----------
    use_case:
        Name of the use-case the allocation belongs to.
    flow:
        The flow being served (with the use-case's own bandwidth/latency).
    switch_path:
        Switch indices from the source core's switch to the destination
        core's switch; a single element when both attach to the same switch.
    link_slots:
        TDMA slot indices reserved per directed inter-switch link (empty for
        best-effort flows and same-switch paths).
    """

    use_case: str
    flow: Flow
    switch_path: Tuple[int, ...]
    link_slots: Mapping[Link, Tuple[int, ...]] = field(default_factory=dict)

    @property
    def hop_count(self) -> int:
        """Number of inter-switch links traversed."""
        return max(0, len(self.switch_path) - 1)

    @property
    def slots_per_link(self) -> int:
        """Slots reserved on each traversed link (0 when none)."""
        if not self.link_slots:
            return 0
        return len(next(iter(self.link_slots.values())))

    @property
    def links(self) -> Tuple[Link, ...]:
        """The directed inter-switch links of the path, in order."""
        return tuple(zip(self.switch_path, self.switch_path[1:]))


class UseCaseConfiguration:
    """The NoC configuration (paths + slots) used while one use-case runs."""

    def __init__(self, use_case: str, group_id: int) -> None:
        self.use_case = use_case
        self.group_id = group_id
        self._allocations: Dict[Tuple[str, str], FlowAllocation] = {}

    def add(self, allocation: FlowAllocation) -> None:
        """Register the allocation of one flow (one per core pair)."""
        pair = allocation.flow.pair
        if pair in self._allocations:
            raise SpecificationError(
                f"use-case {self.use_case!r} already has an allocation for pair {pair}"
            )
        self._allocations[pair] = allocation

    @property
    def allocations(self) -> Tuple[FlowAllocation, ...]:
        """All flow allocations of the use-case."""
        return tuple(self._allocations.values())

    def allocation_for(self, source: str, destination: str) -> Optional[FlowAllocation]:
        """The allocation for a core pair, or ``None``."""
        return self._allocations.get((source, destination))

    def link_loads(self) -> Dict[Link, float]:
        """Bandwidth (bytes/s) carried by every inter-switch link in this use-case."""
        loads: Dict[Link, float] = {}
        for allocation in self._allocations.values():
            for link in allocation.links:
                loads[link] = loads.get(link, 0.0) + allocation.flow.bandwidth
        return loads

    def core_loads(self) -> Tuple[Dict[str, float], Dict[str, float]]:
        """(egress, ingress) bandwidth per core in this use-case (bytes/s)."""
        egress: Dict[str, float] = {}
        ingress: Dict[str, float] = {}
        for allocation in self._allocations.values():
            flow = allocation.flow
            egress[flow.source] = egress.get(flow.source, 0.0) + flow.bandwidth
            ingress[flow.destination] = ingress.get(flow.destination, 0.0) + flow.bandwidth
        return egress, ingress

    def max_link_load(self) -> float:
        """Largest per-link bandwidth in this use-case (bytes/s), 0 if none."""
        loads = self.link_loads()
        return max(loads.values(), default=0.0)

    def max_access_load(self) -> float:
        """Largest per-core ingress or egress bandwidth (bytes/s), 0 if none."""
        egress, ingress = self.core_loads()
        values = list(egress.values()) + list(ingress.values())
        return max(values, default=0.0)

    def total_traffic(self) -> float:
        """Sum of flow bandwidths in this use-case (bytes/s)."""
        return sum(alloc.flow.bandwidth for alloc in self._allocations.values())

    def total_bandwidth_hops(self) -> float:
        """Sum over flows of bandwidth × hop count — the power-model workload."""
        return sum(
            alloc.flow.bandwidth * alloc.hop_count for alloc in self._allocations.values()
        )

    def __len__(self) -> int:
        return len(self._allocations)

    def __iter__(self) -> Iterator[FlowAllocation]:
        return iter(self._allocations.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"UseCaseConfiguration(use_case={self.use_case!r}, group={self.group_id}, "
            f"flows={len(self._allocations)})"
        )


class MappingResult:
    """Complete output of a mapping run.

    Attributes
    ----------
    method:
        ``"unified"`` for the paper's methodology, ``"worst_case"`` for the
        baseline.
    topology:
        The smallest topology on which the mapping succeeded.
    params, config:
        The operating point and algorithm configuration used.
    core_mapping:
        The shared core-to-switch assignment (identical for all use-cases).
    groups:
        The smooth-switching configuration groups (sets of use-case names).
    configurations:
        One :class:`UseCaseConfiguration` per use-case.
    attempted_topologies:
        Names of the topologies the outer loop tried before succeeding.
    """

    def __init__(
        self,
        method: str,
        topology: Topology,
        params: NoCParameters,
        config: MapperConfig,
        core_mapping: Mapping[str, int],
        groups: Sequence[FrozenSet[str]],
        configurations: Mapping[str, UseCaseConfiguration],
        attempted_topologies: Sequence[str] = (),
    ) -> None:
        self.method = method
        self.topology = topology
        self.params = params
        self.config = config
        self.core_mapping: Dict[str, int] = dict(core_mapping)
        self.groups: Tuple[FrozenSet[str], ...] = tuple(groups)
        self.configurations: Dict[str, UseCaseConfiguration] = dict(configurations)
        self.attempted_topologies: Tuple[str, ...] = tuple(attempted_topologies)
        #: total bandwidth-hops, precomputed by producers that already walk
        #: every allocation (the engine's fixed-placement evaluator); the
        #: refiners' cost function uses it instead of re-summing
        self.cached_communication_cost: Optional[float] = None

    # ------------------------------------------------------------------ #
    # headline metrics
    # ------------------------------------------------------------------ #
    @property
    def switch_count(self) -> int:
        """Number of switches in the final NoC — the paper's primary metric."""
        return self.topology.switch_count

    @property
    def mesh_dimensions(self) -> Optional[Tuple[int, int]]:
        """(rows, cols) of the final mesh, or ``None`` for irregular topologies."""
        return self.topology.dimensions

    @property
    def use_case_names(self) -> Tuple[str, ...]:
        """All use-case names covered by this result."""
        return tuple(self.configurations.keys())

    def configuration(self, use_case: str) -> UseCaseConfiguration:
        """The configuration of one use-case."""
        try:
            return self.configurations[use_case]
        except KeyError:
            raise SpecificationError(
                f"result has no configuration for use-case {use_case!r}"
            ) from None

    def group_of(self, use_case: str) -> FrozenSet[str]:
        """The smooth-switching group containing a use-case."""
        for group in self.groups:
            if use_case in group:
                return group
        raise SpecificationError(f"use-case {use_case!r} belongs to no group")

    def switch_of(self, core: str) -> int:
        """The switch a core is mapped to."""
        try:
            return self.core_mapping[core]
        except KeyError:
            raise SpecificationError(f"core {core!r} is not mapped") from None

    def cores_on_switch(self, switch_index: int) -> Tuple[str, ...]:
        """All cores attached to the given switch."""
        return tuple(
            sorted(core for core, sw in self.core_mapping.items() if sw == switch_index)
        )

    def max_link_load(self, use_case: Optional[str] = None) -> float:
        """Largest per-link bandwidth over one use-case or over all of them."""
        if use_case is not None:
            return self.configuration(use_case).max_link_load()
        return max(
            (cfg.max_link_load() for cfg in self.configurations.values()), default=0.0
        )

    def max_utilization(self, use_case: Optional[str] = None) -> float:
        """Largest link or access-link utilisation relative to link capacity."""
        capacity = self.params.link_capacity
        names = [use_case] if use_case is not None else list(self.configurations)
        worst = 0.0
        for name in names:
            cfg = self.configuration(name)
            worst = max(worst, cfg.max_link_load() / capacity, cfg.max_access_load() / capacity)
        return worst

    def reconfigurable_pairs(self) -> int:
        """Number of use-case pairs between which the NoC may be re-configured.

        Pairs inside one smooth-switching group share a configuration; every
        cross-group pair is a re-configuration opportunity (path / slot-table
        reload and DVS/DFS re-scaling).
        """
        total = len(self.configurations)
        all_pairs = total * (total - 1) // 2
        same_group = sum(len(group) * (len(group) - 1) // 2 for group in self.groups)
        return all_pairs - same_group

    def summary(self) -> Dict[str, object]:
        """A plain-dict summary used by the reports and the benchmark harness."""
        return {
            "method": self.method,
            "topology": self.topology.name,
            "switch_count": self.switch_count,
            "mesh_dimensions": self.mesh_dimensions,
            "use_cases": len(self.configurations),
            "groups": len(self.groups),
            "cores": len(self.core_mapping),
            "frequency_hz": self.params.frequency_hz,
            "link_width_bits": self.params.link_width_bits,
            "max_utilization": round(self.max_utilization(), 4),
            "attempted_topologies": list(self.attempted_topologies),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MappingResult(method={self.method!r}, topology={self.topology.name!r}, "
            f"use_cases={len(self.configurations)})"
        )
