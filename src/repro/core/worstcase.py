"""The worst-case (WC) baseline the paper compares against (ref. [25]).

The earlier approach to multi-use-case mapping builds one *synthetic
worst-case use-case* that subsumes the constraints of every real use-case —
for every pair of cores that communicates in any use-case it takes the
largest bandwidth requirement and the tightest latency requirement found
anywhere — and then designs and optimises the NoC for that single use-case.

The resulting NoC trivially satisfies every individual use-case, but the
worst-case use-case is heavily over-specified (it pretends that every flow
of every use-case is active simultaneously at its worst level), so the NoC
grows quickly with the number and diversity of use-cases; the paper's
evaluation shows it needing an 11x11 mesh where the proposed method needs a
2x2, and failing outright at 40 use-cases.

This module reproduces that baseline on top of the same
:class:`~repro.core.mapping.UnifiedMapper` engine so the comparison isolates
exactly the methodological difference (one over-specified use-case versus
per-use-case resource states).
"""

from __future__ import annotations

from typing import Optional

from repro.core.engine import MappingEngine
from repro.core.result import MappingResult
from repro.core.usecase import Core, Flow, UseCase, UseCaseSet
from repro.exceptions import SpecificationError
from repro.params import MapperConfig, NoCParameters

__all__ = ["build_worst_case_use_case", "WorstCaseMapper", "map_worst_case"]

#: Name given to the synthesised worst-case use-case.
WORST_CASE_NAME = "worst-case"


def build_worst_case_use_case(
    use_cases: UseCaseSet,
    name: str = WORST_CASE_NAME,
) -> UseCase:
    """Construct the synthetic worst-case use-case of the baseline method.

    For every ordered core pair that communicates in *any* use-case, the
    worst-case use-case contains one flow whose bandwidth is the **maximum**
    bandwidth required by any use-case for that pair and whose latency is
    the **minimum** (tightest) latency constraint.  All cores of the design
    are included so the mapping covers them.
    """
    use_cases.validate()
    worst = UseCase(name=name)
    for core in use_cases.all_cores():
        worst.add_core(Core(core.name, core.kind))
    best_per_pair: dict[tuple[str, str], Flow] = {}
    for _, flow in use_cases.all_flows():
        existing = best_per_pair.get(flow.pair)
        if existing is None:
            best_per_pair[flow.pair] = flow
        else:
            best_per_pair[flow.pair] = Flow(
                source=flow.source,
                destination=flow.destination,
                bandwidth=max(existing.bandwidth, flow.bandwidth),
                latency=min(existing.latency, flow.latency),
                traffic_class=(
                    existing.traffic_class
                    if existing.traffic_class == flow.traffic_class
                    else "GT"
                ),
            )
    for flow in best_per_pair.values():
        worst.add_flow(
            Flow(
                source=flow.source,
                destination=flow.destination,
                bandwidth=flow.bandwidth,
                latency=flow.latency,
                traffic_class=flow.traffic_class,
            )
        )
    if len(worst) == 0:
        raise SpecificationError("worst-case construction produced no flows")
    return worst


class WorstCaseMapper:
    """Maps a multi-use-case design via the worst-case baseline method.

    Backed by a :class:`~repro.core.engine.MappingEngine`: the synthetic
    worst-case use-case is compiled once per specification and its
    requirement/worklist derivation is shared by every growing-mesh attempt
    of the outer loop and by repeated calls (the frequency searches probe
    the same worst-case spec at many operating points).  Mesh attempts also
    reuse the engine mapper's per-topology pristine resource-state templates
    and path caches instead of rebuilding them from scratch per attempt.
    """

    def __init__(
        self,
        params: NoCParameters | None = None,
        config: MapperConfig | None = None,
        engine: MappingEngine | None = None,
    ) -> None:
        self.engine = engine or MappingEngine(params=params, config=config)
        self.params = self.engine.params
        self.config = self.engine.config

    def map(self, use_cases: UseCaseSet) -> MappingResult:
        """Build the worst-case use-case and map it as a single use-case.

        The returned result's ``method`` is ``"worst_case"``; it contains a
        single configuration (for the synthetic use-case), which every real
        use-case shares because the WC method never re-configures the NoC.

        Raises
        ------
        MappingError
            When even the largest admissible topology cannot carry the
            worst-case traffic — the situation the paper reports for the
            40-use-case synthetic benchmarks.
        """
        return self.engine.worst_case(use_cases)


def map_worst_case(
    use_cases: UseCaseSet,
    params: NoCParameters | None = None,
    config: MapperConfig | None = None,
    engine: MappingEngine | None = None,
) -> MappingResult:
    """Convenience wrapper around :class:`WorstCaseMapper`."""
    return WorstCaseMapper(params=params, config=config, engine=engine).map(use_cases)
