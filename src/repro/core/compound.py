"""Compound-mode generation (design-flow phase 1).

SoCs run several use-cases *in parallel* (the paper's example: video display
and recording on a set-top box).  The designer only specifies *which*
use-cases may run together; the methodology then generates a new use-case —
a *compound mode* — representing the combined traffic:

* the bandwidth of a flow between two cores in the compound mode is the
  **sum** of the bandwidths of the matching flows in the constituent
  use-cases, and
* the latency requirement is the **minimum** of the constituents' latency
  requirements.

Compound modes are then treated as ordinary use-cases for the rest of the
design flow, and the constituent use-cases are implicitly required to switch
smoothly into the compound mode (handled by
:mod:`repro.core.switching`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.usecase import Core, Flow, UseCase, UseCaseSet
from repro.exceptions import SpecificationError

__all__ = ["CompoundModeSpec", "generate_compound_modes", "merge_use_cases"]


@dataclass(frozen=True)
class CompoundModeSpec:
    """Designer declaration that a set of use-cases can run in parallel.

    Parameters
    ----------
    members:
        Names of the use-cases that run concurrently (at least two).
    name:
        Optional name for the generated compound use-case.  When omitted the
        name is derived from the members (``"U1+U2"`` style), mirroring the
        paper's ``U_123`` / ``U_45`` naming.
    """

    members: Tuple[str, ...]
    name: str = ""

    def __init__(self, members: Sequence[str], name: str = "") -> None:
        unique = tuple(dict.fromkeys(members))
        if len(unique) < 2:
            raise SpecificationError(
                f"a compound mode needs at least two distinct use-cases, got {members!r}"
            )
        object.__setattr__(self, "members", unique)
        object.__setattr__(self, "name", name or "+".join(unique))


def merge_use_cases(use_cases: Sequence[UseCase], name: str) -> UseCase:
    """Merge use-cases that run in parallel into a single compound use-case.

    Implements the paper's rule directly: per (source, destination) pair the
    bandwidths are summed and the latency requirement is the minimum over
    the constituents.  Cores are the union of the constituents' cores.
    """
    if not use_cases:
        raise SpecificationError("cannot merge an empty collection of use-cases")
    merged_flows: Dict[Tuple[str, str], Flow] = {}
    merged_cores: Dict[str, Core] = {}
    for use_case in use_cases:
        for core in use_case.cores:
            existing = merged_cores.get(core.name)
            if existing is not None and existing != core:
                raise SpecificationError(
                    f"use-cases disagree on the definition of core {core.name!r}"
                )
            merged_cores.setdefault(core.name, core)
        for flow in use_case.flows:
            existing_flow = merged_flows.get(flow.pair)
            merged_flows[flow.pair] = (
                flow if existing_flow is None else existing_flow.merged_with(flow)
            )
    return UseCase(
        name=name,
        flows=merged_flows.values(),
        cores=merged_cores.values(),
        parents=tuple(uc.name for uc in use_cases),
    )


def generate_compound_modes(
    use_cases: UseCaseSet,
    parallel_specs: Iterable[CompoundModeSpec],
) -> Tuple[UseCaseSet, List[UseCase]]:
    """Phase 1 of the design flow: expand parallel-mode declarations.

    Parameters
    ----------
    use_cases:
        The designer-provided use-cases (``U1 ... Un`` in Figure 3).
    parallel_specs:
        The ``PUC`` input: which use-cases can run in parallel.

    Returns
    -------
    (expanded_set, generated)
        ``expanded_set`` is a *new* :class:`UseCaseSet` containing the
        original use-cases plus one generated compound use-case per spec;
        ``generated`` lists just the generated compound use-cases (useful to
        feed the smooth-switching constraints of phase 2).

    Raises
    ------
    SpecificationError
        If a spec references an unknown use-case or would collide with an
        existing use-case name.
    """
    expanded = UseCaseSet(use_cases.use_cases, name=use_cases.name)
    generated: List[UseCase] = []
    for spec in parallel_specs:
        missing = [member for member in spec.members if member not in use_cases]
        if missing:
            raise SpecificationError(
                f"compound mode {spec.name!r} references unknown use-case(s) {missing}"
            )
        if spec.name in expanded:
            raise SpecificationError(
                f"compound mode name {spec.name!r} collides with an existing use-case"
            )
        members = [use_cases[member] for member in spec.members]
        compound = merge_use_cases(members, name=spec.name)
        expanded.add(compound)
        generated.append(compound)
    return expanded, generated
