"""Core data model and algorithms of the multi-use-case mapping methodology.

This package contains the paper's primary contribution:

* :mod:`repro.core.usecase` — cores, flows, use-cases and sets of use-cases.
* :mod:`repro.core.compound` — automatic generation of compound (parallel)
  modes from constituent use-cases (design-flow phase 1).
* :mod:`repro.core.switching` — the switching graph and Algorithm 1 grouping
  of use-cases that must share one NoC configuration (phase 2).
* :mod:`repro.core.mapping` — Algorithm 2, the unified mapping / path
  selection / TDMA slot reservation heuristic (phase 3).
* :mod:`repro.core.worstcase` — the worst-case single-use-case baseline the
  paper compares against (ref. [25]).
* :mod:`repro.core.design_flow` — the end-to-end methodology pipeline.
"""

from repro.core.usecase import Core, Flow, UseCase, UseCaseSet
from repro.core.compound import CompoundModeSpec, generate_compound_modes
from repro.core.switching import SwitchingGraph, group_use_cases
from repro.core.config import MapperConfig, NoCParameters
from repro.core.result import FlowAllocation, MappingResult, UseCaseConfiguration
from repro.core.spec import (
    CompiledFlow,
    CompiledGroup,
    CompiledSpec,
    CompiledUseCase,
    compile_spec,
)
from repro.core.mapping import UnifiedMapper, map_use_cases
from repro.core.engine import MappingEngine
from repro.core.repair import RepairOutcome, repair_mapping
from repro.core.validate import ValidationIssue, ValidationReport, validate_mapping
from repro.core.worstcase import build_worst_case_use_case, WorstCaseMapper
from repro.core.design_flow import DesignFlow, DesignFlowResult

__all__ = [
    "Core",
    "Flow",
    "UseCase",
    "UseCaseSet",
    "CompiledFlow",
    "CompiledGroup",
    "CompiledSpec",
    "CompiledUseCase",
    "compile_spec",
    "CompoundModeSpec",
    "generate_compound_modes",
    "SwitchingGraph",
    "group_use_cases",
    "MapperConfig",
    "NoCParameters",
    "FlowAllocation",
    "MappingResult",
    "UseCaseConfiguration",
    "UnifiedMapper",
    "MappingEngine",
    "RepairOutcome",
    "repair_mapping",
    "ValidationIssue",
    "ValidationReport",
    "validate_mapping",
    "map_use_cases",
    "build_worst_case_use_case",
    "WorstCaseMapper",
    "DesignFlow",
    "DesignFlowResult",
]
