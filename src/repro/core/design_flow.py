"""The end-to-end multi-use-case NoC design flow (Figure 3 of the paper).

The flow stitches the individual phases together:

* **Phase 1** — parallel-mode (compound) use-case generation from the
  designer's ``PUC`` input (:mod:`repro.core.compound`).
* **Phase 2** — use-case grouping for smooth switching from the ``SUC``
  input plus the automatic compound-member constraints
  (:mod:`repro.core.switching`, Algorithm 1).
* **Phase 3** — unified mapping, path selection and slot-table reservation
  (:mod:`repro.core.mapping`, Algorithm 2), optionally followed by a
  refinement pass (:mod:`repro.optimize`).
* **Phase 4** — analytical performance verification of the produced
  configuration (:mod:`repro.perf.verification`) and, in place of the
  paper's SystemC/VHDL generation, a structural export
  (:mod:`repro.io.export`).

Most users only need :meth:`DesignFlow.run`; the individual phases remain
available for scripting finer-grained experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.core.compound import CompoundModeSpec, generate_compound_modes
from repro.core.engine import MappingEngine
from repro.core.result import MappingResult
from repro.core.switching import SwitchingGraph
from repro.core.usecase import UseCase, UseCaseSet
from repro.params import MapperConfig, NoCParameters
from repro.perf.verification import VerificationReport, verify_mapping

__all__ = ["DesignFlow", "DesignFlowResult"]


@dataclass
class DesignFlowResult:
    """Everything the design flow produced for one design.

    Attributes
    ----------
    use_cases:
        The expanded use-case set (original use-cases plus generated
        compound modes).
    generated_compound_modes:
        Only the use-cases synthesised by phase 1.
    switching_graph:
        The phase-2 switching graph.
    groups:
        Its connected components — the sets of use-cases sharing one NoC
        configuration.
    mapping:
        The phase-3 mapping result.
    verification:
        The phase-4 analytical verification report (``None`` when
        verification was disabled).
    """

    use_cases: UseCaseSet
    generated_compound_modes: Tuple[UseCase, ...]
    switching_graph: SwitchingGraph
    groups: Tuple[FrozenSet[str], ...]
    mapping: MappingResult
    verification: Optional[VerificationReport] = None

    @property
    def switch_count(self) -> int:
        """Number of switches in the final NoC."""
        return self.mapping.switch_count

    def summary(self) -> dict:
        """Plain-dict digest for reports and logs."""
        digest = dict(self.mapping.summary())
        digest.update(
            {
                "compound_modes": [uc.name for uc in self.generated_compound_modes],
                "groups": [sorted(group) for group in self.groups],
                "verified": None if self.verification is None else self.verification.passed,
            }
        )
        return digest


class DesignFlow:
    """Orchestrates phases 1-4 of the multi-use-case NoC design methodology.

    The flow owns a :class:`~repro.core.engine.MappingEngine` session (the
    public mapping API) and delegates phase 3 to it; passing a shared engine
    lets several flows — or a flow plus the analysis sweeps — reuse compiled
    specifications and mapping results.
    """

    def __init__(
        self,
        params: NoCParameters | None = None,
        config: MapperConfig | None = None,
        verify: bool = True,
        engine: MappingEngine | None = None,
    ) -> None:
        self.engine = engine or MappingEngine(params=params, config=config)
        self.params = self.engine.params
        self.config = self.engine.config
        self.verify = verify

    def run(
        self,
        use_cases: UseCaseSet,
        parallel_modes: Sequence[CompoundModeSpec] = (),
        smooth_switching: Sequence[Tuple[str, str]] = (),
    ) -> DesignFlowResult:
        """Run the full methodology on one design.

        Parameters
        ----------
        use_cases:
            The designer's use-cases (``U1 ... Un``).
        parallel_modes:
            The ``PUC`` input: which use-cases may run in parallel.
        smooth_switching:
            The ``SUC`` input: pairs of use-case names that must switch
            smoothly (and therefore share a configuration).
        """
        # Phase 1: generate compound modes for the declared parallel sets.
        expanded, generated = generate_compound_modes(use_cases, parallel_modes)

        # Phase 2: build the switching graph and group the use-cases.
        switching_graph = SwitchingGraph.from_use_case_set(
            expanded,
            smooth_pairs=smooth_switching,
            include_compound_members=True,
        )
        groups = tuple(switching_graph.groups())

        # Phase 3: unified mapping and NoC configuration (engine session).
        mapping = self.engine.map(expanded, switching_graph=switching_graph)

        # Phase 4: analytical verification of the GT connections.
        report = verify_mapping(mapping, expanded) if self.verify else None

        return DesignFlowResult(
            use_cases=expanded,
            generated_compound_modes=tuple(generated),
            switching_graph=switching_graph,
            groups=groups,
            mapping=mapping,
            verification=report,
        )
