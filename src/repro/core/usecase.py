"""Use-case data model: cores, traffic flows, use-cases and use-case sets.

The paper (Definition 2) models each use-case ``i`` as a set of flows
``F_i`` between pairs of cores, every flow carrying a bandwidth requirement
``bw_{i,j}`` (maximum rate of traffic) and a latency constraint
``lat_{i,j}`` (maximum delay for a packet of the flow).

The classes here are deliberately simple, immutable-where-possible value
objects; all algorithmic behaviour lives in the mapping / analysis modules.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import SpecificationError

__all__ = ["Core", "Flow", "UseCase", "UseCaseSet", "TrafficClass"]


def _hash_blob(parts: Iterable[str]) -> str:
    """SHA-256 hex digest over an iterable of string tokens."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode())
        digest.update(b"\x00")
    return digest.hexdigest()


def _flow_token(flow: "Flow") -> str:
    """Canonical string token of one flow (exact float encoding)."""
    return "|".join(
        (
            flow.source,
            flow.destination,
            float(flow.bandwidth).hex(),
            float(flow.latency).hex(),
            flow.traffic_class,
        )
    )


def _core_token(core: "Core") -> str:
    """Canonical string token of one core."""
    return f"{core.name}|{core.kind}"


#: Default latency constraint (seconds) for flows that do not specify one.
#: One millisecond is far looser than any hop-count latency a single chip
#: can produce, so an unspecified latency never constrains the mapping.
UNCONSTRAINED_LATENCY = 1e-3


class TrafficClass:
    """Service classes offered by the Æthereal-style NoC.

    Guaranteed-throughput (GT) flows get TDMA slot reservations and
    analytical latency bounds; best-effort (BE) flows only get bandwidth
    accounting (they share the slack left by GT traffic).
    """

    GUARANTEED = "GT"
    BEST_EFFORT = "BE"

    #: All valid traffic-class identifiers.
    ALL = (GUARANTEED, BEST_EFFORT)


@dataclass(frozen=True)
class Core:
    """A processing or storage element of the SoC that attaches to one NI.

    Parameters
    ----------
    name:
        Unique identifier of the core within the design
        (e.g. ``"mem1"``, ``"filter 3"``).
    kind:
        Free-form classification used by the benchmark generators and the
        reports (``"processor"``, ``"memory"``, ``"io"`` ...).  It does not
        influence the mapping algorithm.
    """

    name: str
    kind: str = "core"

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SpecificationError(f"core name must be a non-empty string, got {self.name!r}")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


@dataclass(frozen=True)
class Flow:
    """A directed traffic flow between two cores inside one use-case.

    Parameters
    ----------
    source, destination:
        Names of the communicating cores.
    bandwidth:
        Required bandwidth in bytes/s (use :func:`repro.units.mbps` to write
        paper-style values).  Must be positive.
    latency:
        Maximum tolerated packet latency in seconds.  Defaults to a value
        loose enough to never constrain the mapping.
    traffic_class:
        ``"GT"`` (guaranteed throughput, gets TDMA slots) or ``"BE"``.
    name:
        Optional label; auto-derived from the endpoints when omitted.
    """

    source: str
    destination: str
    bandwidth: float
    latency: float = UNCONSTRAINED_LATENCY
    traffic_class: str = TrafficClass.GUARANTEED
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.source or not self.destination:
            raise SpecificationError("flow endpoints must be non-empty core names")
        if self.source == self.destination:
            raise SpecificationError(
                f"flow source and destination must differ, got {self.source!r} for both"
            )
        if not math.isfinite(self.bandwidth) or self.bandwidth <= 0:
            raise SpecificationError(
                f"flow {self.source}->{self.destination} must have positive finite "
                f"bandwidth, got {self.bandwidth!r}"
            )
        if not math.isfinite(self.latency) or self.latency <= 0:
            raise SpecificationError(
                f"flow {self.source}->{self.destination} must have positive finite "
                f"latency, got {self.latency!r}"
            )
        if self.traffic_class not in TrafficClass.ALL:
            raise SpecificationError(
                f"unknown traffic class {self.traffic_class!r}; expected one of {TrafficClass.ALL}"
            )
        if self.name is None:
            object.__setattr__(self, "name", f"{self.source}->{self.destination}")

    @property
    def pair(self) -> Tuple[str, str]:
        """The ordered (source, destination) core-name pair."""
        return (self.source, self.destination)

    def scaled(self, factor: float) -> "Flow":
        """Return a copy of this flow with bandwidth multiplied by ``factor``."""
        if factor <= 0:
            raise SpecificationError(f"scale factor must be positive, got {factor}")
        return Flow(
            source=self.source,
            destination=self.destination,
            bandwidth=self.bandwidth * factor,
            latency=self.latency,
            traffic_class=self.traffic_class,
            name=self.name,
        )

    def merged_with(self, other: "Flow") -> "Flow":
        """Combine this flow with a same-pair flow from a parallel use-case.

        Implements the paper's compound-mode rule: bandwidths are summed and
        the latency requirement is the minimum of the two.  GT wins over BE
        because a guaranteed flow must keep its guarantee in the compound
        mode.
        """
        if other.pair != self.pair:
            raise SpecificationError(
                f"cannot merge flows with different endpoints: {self.pair} vs {other.pair}"
            )
        traffic_class = TrafficClass.GUARANTEED if (
            TrafficClass.GUARANTEED in (self.traffic_class, other.traffic_class)
        ) else TrafficClass.BEST_EFFORT
        return Flow(
            source=self.source,
            destination=self.destination,
            bandwidth=self.bandwidth + other.bandwidth,
            latency=min(self.latency, other.latency),
            traffic_class=traffic_class,
        )


class UseCase:
    """One use-case (operating mode) of the SoC: a named set of flows.

    A use-case may carry the subset of cores it uses explicitly; cores not
    mentioned by any flow can still be listed so that the mapper places them
    (they will be attached to whichever switch has spare NI ports).
    """

    def __init__(
        self,
        name: str,
        flows: Iterable[Flow] = (),
        cores: Iterable[Core] = (),
        parents: Sequence[str] = (),
    ) -> None:
        if not name:
            raise SpecificationError("use-case name must be non-empty")
        self.name = name
        #: Names of the constituent use-cases if this is a compound mode.
        self.parents: Tuple[str, ...] = tuple(parents)
        self._flows: List[Flow] = []
        self._flow_by_pair: Dict[Tuple[str, str], Flow] = {}
        self._cores: Dict[str, Core] = {}
        self._frozen = False
        self._content_hash: Optional[str] = None
        for core in cores:
            self.add_core(core)
        for flow in flows:
            self.add_flow(flow)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _guard_mutation(self) -> None:
        if self._frozen:
            raise SpecificationError(
                f"use-case {self.name!r} is frozen (it was compiled or hashed for "
                "caching); build a new UseCase instead of mutating it"
            )

    def freeze(self) -> "UseCase":
        """Seal the use-case: any further mutation raises.

        Freezing is what makes content hashes usable as cache keys — the
        compiled-spec layer freezes every use-case it compiles.  Freezing is
        idempotent and returns ``self`` for chaining.
        """
        self._frozen = True
        return self

    @property
    def frozen(self) -> bool:
        """Whether the use-case has been sealed against mutation."""
        return self._frozen

    def content_hash(self) -> str:
        """Stable hash of the use-case content, independent of build order.

        Flows and cores are hashed in a canonical (sorted) order, so two
        use-cases built by adding the same flows in different orders hash
        identically.  The hash is cached once the use-case is frozen.
        """
        if self._content_hash is not None:
            return self._content_hash
        tokens = ["usecase", self.name, "parents", *self.parents, "cores"]
        tokens.extend(sorted(_core_token(core) for core in self._cores.values()))
        tokens.extend(sorted(_flow_token(flow) for flow in self._flows))
        value = _hash_blob(tokens)
        if self._frozen:
            self._content_hash = value
        return value

    def add_core(self, core: Core) -> None:
        """Register a core with the use-case (idempotent for identical cores)."""
        self._guard_mutation()
        existing = self._cores.get(core.name)
        if existing is not None and existing != core:
            raise SpecificationError(
                f"use-case {self.name!r} already has a different core named {core.name!r}"
            )
        self._cores[core.name] = core

    def add_flow(self, flow: Flow) -> None:
        """Add a traffic flow, implicitly registering its endpoint cores.

        Adding a second flow for the same (source, destination) pair merges
        the two (bandwidths summed, latencies min-ed) — a use-case has at
        most one aggregate requirement per ordered pair, matching the
        paper's per-pair formulation.
        """
        self._guard_mutation()
        for endpoint in (flow.source, flow.destination):
            if endpoint not in self._cores:
                self._cores[endpoint] = Core(endpoint)
        existing = self._flow_by_pair.get(flow.pair)
        if existing is not None:
            merged = existing.merged_with(flow)
            index = self._flows.index(existing)
            self._flows[index] = merged
            self._flow_by_pair[flow.pair] = merged
        else:
            self._flows.append(flow)
            self._flow_by_pair[flow.pair] = flow

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def flows(self) -> Tuple[Flow, ...]:
        """All flows of the use-case, in insertion order."""
        return tuple(self._flows)

    @property
    def cores(self) -> Tuple[Core, ...]:
        """All cores referenced (or explicitly added) by the use-case."""
        return tuple(self._cores.values())

    @property
    def core_names(self) -> Tuple[str, ...]:
        """Names of all cores of the use-case."""
        return tuple(self._cores.keys())

    @property
    def is_compound(self) -> bool:
        """True when this use-case was generated from parallel use-cases."""
        return bool(self.parents)

    def flow_between(self, source: str, destination: str) -> Optional[Flow]:
        """The flow from ``source`` to ``destination``, or ``None``."""
        return self._flow_by_pair.get((source, destination))

    def has_core(self, name: str) -> bool:
        """Whether the use-case references a core called ``name``."""
        return name in self._cores

    def total_bandwidth(self) -> float:
        """Sum of all flow bandwidth requirements (bytes/s)."""
        return sum(flow.bandwidth for flow in self._flows)

    def max_bandwidth(self) -> float:
        """Largest single-flow bandwidth requirement (bytes/s), 0 if empty."""
        return max((flow.bandwidth for flow in self._flows), default=0.0)

    def communication_degree(self) -> Dict[str, int]:
        """Number of flows each core participates in (as source or destination)."""
        degree: Dict[str, int] = {name: 0 for name in self._cores}
        for flow in self._flows:
            degree[flow.source] += 1
            degree[flow.destination] += 1
        return degree

    def __len__(self) -> int:
        return len(self._flows)

    def __iter__(self) -> Iterator[Flow]:
        return iter(self._flows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"UseCase(name={self.name!r}, cores={len(self._cores)}, "
            f"flows={len(self._flows)})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UseCase):
            return NotImplemented
        return (
            self.name == other.name
            and set(self._cores.values()) == set(other._cores.values())
            and set(self._flows) == set(other._flows)
        )

    def __hash__(self) -> int:
        return hash(self.name)


class UseCaseSet:
    """The collection of use-cases a design must support.

    The set owns the global core universe (the union of all per-use-case
    cores) because the paper requires a **single** mapping of cores onto the
    NoC shared by all use-cases; the mapper therefore needs the union.
    """

    def __init__(self, use_cases: Iterable[UseCase] = (), name: str = "design") -> None:
        self.name = name
        self._use_cases: Dict[str, UseCase] = {}
        self._frozen = False
        self._content_hash: Optional[str] = None
        for use_case in use_cases:
            self.add(use_case)

    def add(self, use_case: UseCase) -> None:
        """Add a use-case; names must be unique within the set."""
        if self._frozen:
            raise SpecificationError(
                f"use-case set {self.name!r} is frozen (it was compiled or hashed "
                "for caching); build a new UseCaseSet instead of mutating it"
            )
        if use_case.name in self._use_cases:
            raise SpecificationError(
                f"duplicate use-case name {use_case.name!r} in set {self.name!r}"
            )
        self._use_cases[use_case.name] = use_case

    def freeze(self) -> "UseCaseSet":
        """Seal the set and every member use-case against mutation.

        Called by the compiled-spec layer before hashing; idempotent.  Note
        that building a *new* set from frozen use-cases is always allowed —
        freezing seals objects, not the design space.
        """
        self._frozen = True
        for use_case in self._use_cases.values():
            use_case.freeze()
        return self

    @property
    def frozen(self) -> bool:
        """Whether the set has been sealed against mutation."""
        return self._frozen

    def content_hash(self) -> str:
        """Stable hash of the set content, independent of insertion order.

        Member use-cases are hashed in name-sorted order, so two sets built
        by adding the same use-cases in different orders hash identically.
        (The mapping engine's cache keys additionally cover declaration
        order, which Algorithm 2's tie-breaks observe — see
        :meth:`repro.core.spec.CompiledSpec.spec_hash`.)
        """
        if self._content_hash is not None:
            return self._content_hash
        tokens = ["usecaseset"]
        tokens.extend(
            self._use_cases[name].content_hash() for name in sorted(self._use_cases)
        )
        value = _hash_blob(tokens)
        if self._frozen:
            self._content_hash = value
        return value

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def use_cases(self) -> Tuple[UseCase, ...]:
        """All use-cases in insertion order."""
        return tuple(self._use_cases.values())

    @property
    def names(self) -> Tuple[str, ...]:
        """Names of all use-cases in insertion order."""
        return tuple(self._use_cases.keys())

    def __contains__(self, name: str) -> bool:
        return name in self._use_cases

    def __getitem__(self, name: str) -> UseCase:
        try:
            return self._use_cases[name]
        except KeyError:
            raise SpecificationError(
                f"no use-case named {name!r} in set {self.name!r}; "
                f"known: {sorted(self._use_cases)}"
            ) from None

    def __len__(self) -> int:
        return len(self._use_cases)

    def __iter__(self) -> Iterator[UseCase]:
        return iter(self._use_cases.values())

    def all_cores(self) -> Tuple[Core, ...]:
        """Union of the cores of every use-case (first definition wins)."""
        union: Dict[str, Core] = {}
        for use_case in self._use_cases.values():
            for core in use_case.cores:
                union.setdefault(core.name, core)
        return tuple(union.values())

    def all_core_names(self) -> Tuple[str, ...]:
        """Names of all cores used anywhere in the design."""
        return tuple(core.name for core in self.all_cores())

    def all_flows(self) -> List[Tuple[str, Flow]]:
        """Every (use-case name, flow) pair across the whole set."""
        return [
            (use_case.name, flow)
            for use_case in self._use_cases.values()
            for flow in use_case.flows
        ]

    def total_flow_count(self) -> int:
        """Number of flows summed over all use-cases."""
        return sum(len(use_case) for use_case in self._use_cases.values())

    def max_flow_bandwidth(self) -> float:
        """Largest flow bandwidth anywhere in the set (bytes/s)."""
        return max((uc.max_bandwidth() for uc in self._use_cases.values()), default=0.0)

    def validate(self) -> None:
        """Check cross-use-case consistency of the specification.

        Ensures core definitions agree across use-cases (a name always refers
        to the same core) and that the set is non-empty.  Raises
        :class:`SpecificationError` on the first problem found.
        """
        if not self._use_cases:
            raise SpecificationError(f"use-case set {self.name!r} is empty")
        seen: Dict[str, Tuple[str, Core]] = {}
        for use_case in self._use_cases.values():
            if len(use_case) == 0 and not use_case.cores:
                raise SpecificationError(
                    f"use-case {use_case.name!r} has neither flows nor cores"
                )
            for core in use_case.cores:
                previous = seen.get(core.name)
                if previous is not None and previous[1] != core:
                    raise SpecificationError(
                        f"core {core.name!r} is defined differently in use-cases "
                        f"{previous[0]!r} and {use_case.name!r}"
                    )
                seen.setdefault(core.name, (use_case.name, core))

    def subset(self, names: Sequence[str], name: Optional[str] = None) -> "UseCaseSet":
        """A new set containing only the named use-cases (same objects)."""
        return UseCaseSet(
            (self[n] for n in names),
            name=name or f"{self.name}-subset",
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"UseCaseSet(name={self.name!r}, use_cases={len(self._use_cases)}, "
            f"cores={len(self.all_cores())})"
        )
