"""Compiled, immutable use-case specifications.

The design flow (Fig. 3) evaluates the same specification many times — once
per refinement candidate, per worst-case mesh attempt and per sweep point —
so the mutable builder objects of :mod:`repro.core.usecase` are *compiled*
once into immutable value objects that every evaluation shares:

* :class:`CompiledFlow` — one flow with its endpoint core names interned to
  dense indices of the design's core table;
* :class:`CompiledUseCase` — one use-case with its flows, core universe and
  content hash;
* :class:`CompiledGroup` — one smooth-switching group with the per-pair
  bandwidth/latency aggregates of Algorithm 2's step 6 precomputed;
* :class:`CompiledSpec` — the whole design: interned core table, compiled
  use-cases and a spec hash that keys every cache of the
  :class:`~repro.core.engine.MappingEngine`.

Compiling freezes the source ``UseCaseSet`` (mutation afterwards raises), so
a compiled spec can never silently drift from the objects it was derived
from.  The ``spec_hash`` deliberately covers *declaration order* as well as
content: Algorithm 2's tie-breaks (group ids, the trailing placement of
traffic-less cores) observe the order in which use-cases and cores were
declared, and a cache key must capture everything that influences results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.usecase import (
    Core,
    Flow,
    TrafficClass,
    UseCase,
    UseCaseSet,
    _hash_blob,
)
from repro.exceptions import SpecificationError

__all__ = ["CompiledFlow", "CompiledUseCase", "CompiledGroup", "CompiledSpec", "compile_spec"]


@dataclass(frozen=True)
class CompiledFlow:
    """One flow of a compiled use-case, with interned endpoint indices.

    ``source_index``/``destination_index`` are positions in the owning
    :class:`CompiledSpec`'s core table; engine cache keys use them instead of
    repeating core-name strings.  ``flow`` keeps the original (frozen)
    :class:`~repro.core.usecase.Flow` so result objects can reference it.
    """

    source: str
    destination: str
    source_index: int
    destination_index: int
    bandwidth: float
    latency: float
    guaranteed: bool
    flow: Flow

    @property
    def pair(self) -> Tuple[str, str]:
        """The ordered (source, destination) core-name pair."""
        return (self.source, self.destination)


class CompiledUseCase:
    """Immutable compiled form of one use-case.

    Duck-type compatible with :class:`~repro.core.usecase.UseCase` for the
    queries the mapper performs while recording allocations (``name``,
    ``flow_between``); everything is precomputed at compile time.
    """

    __slots__ = (
        "name",
        "flows",
        "cores",
        "core_names",
        "core_indices",
        "parents",
        "content_hash",
        "_flow_by_pair",
    )

    def __init__(
        self,
        use_case: UseCase,
        core_index: Mapping[str, int],
    ) -> None:
        self.name = use_case.name
        self.parents: Tuple[str, ...] = use_case.parents
        self.cores: Tuple[Core, ...] = use_case.cores
        self.core_names: Tuple[str, ...] = use_case.core_names
        self.core_indices: Tuple[int, ...] = tuple(
            core_index[name] for name in self.core_names
        )
        self.flows: Tuple[CompiledFlow, ...] = tuple(
            CompiledFlow(
                source=flow.source,
                destination=flow.destination,
                source_index=core_index[flow.source],
                destination_index=core_index[flow.destination],
                bandwidth=flow.bandwidth,
                latency=flow.latency,
                guaranteed=flow.traffic_class == TrafficClass.GUARANTEED,
                flow=flow,
            )
            for flow in use_case.flows
        )
        #: pair -> original Flow (what FlowAllocation records carry)
        self._flow_by_pair: Dict[Tuple[str, str], Flow] = {
            compiled.pair: compiled.flow for compiled in self.flows
        }
        self.content_hash = use_case.content_hash()

    def flow_between(self, source: str, destination: str) -> Optional[Flow]:
        """The original flow from ``source`` to ``destination``, or ``None``."""
        return self._flow_by_pair.get((source, destination))

    def __len__(self) -> int:
        return len(self.flows)

    def __iter__(self) -> Iterator[CompiledFlow]:
        return iter(self.flows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledUseCase(name={self.name!r}, cores={len(self.core_names)}, "
            f"flows={len(self.flows)})"
        )


class CompiledGroup:
    """One smooth-switching group with its step-6 aggregates precomputed.

    For every core pair used by any member the group needs the *largest*
    bandwidth and the *tightest* latency any member requires for that pair.
    The aggregation iterates members in name-sorted order and flows in
    declaration order — exactly the order the mapper historically used — so
    float accumulations downstream reproduce the seed bit-for-bit.
    """

    __slots__ = ("group_id", "members", "member_names", "pair_table", "endpoints")

    def __init__(self, group_id: int, members: Sequence[CompiledUseCase]) -> None:
        self.group_id = group_id
        self.members: Tuple[CompiledUseCase, ...] = tuple(members)
        self.member_names: Tuple[str, ...] = tuple(uc.name for uc in members)
        #: pair -> [max bandwidth, min latency, any-guaranteed], in
        #: first-occurrence order over the members' flows.
        pair_table: Dict[Tuple[str, str], List] = {}
        for member in members:
            for flow in member.flows:
                entry = pair_table.get(flow.pair)
                if entry is None:
                    pair_table[flow.pair] = [flow.bandwidth, flow.latency, flow.guaranteed]
                else:
                    if flow.bandwidth > entry[0]:
                        entry[0] = flow.bandwidth
                    if flow.latency < entry[1]:
                        entry[1] = flow.latency
                    entry[2] = entry[2] or flow.guaranteed
        self.pair_table: Dict[Tuple[str, str], Tuple[float, float, bool]] = {
            pair: (bandwidth, latency, guaranteed)
            for pair, (bandwidth, latency, guaranteed) in pair_table.items()
        }
        #: every core that is an endpoint of some aggregated pair, in
        #: first-occurrence order (the placement projection the engine's
        #: evaluation cache keys on).
        endpoints: Dict[str, None] = {}
        for source, destination in self.pair_table:
            endpoints.setdefault(source)
            endpoints.setdefault(destination)
        self.endpoints: Tuple[str, ...] = tuple(endpoints)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledGroup(group_id={self.group_id}, members={self.member_names}, "
            f"pairs={len(self.pair_table)})"
        )


class CompiledSpec:
    """The immutable compiled form of a whole multi-use-case design."""

    __slots__ = (
        "name",
        "use_cases",
        "core_names",
        "core_index",
        "cores",
        "spec_hash",
        "use_case_set",
        "_by_name",
        "_group_cache",
    )

    def __init__(self, use_case_set: UseCaseSet) -> None:
        use_case_set.validate()
        use_case_set.freeze()
        self.use_case_set = use_case_set
        self.name = use_case_set.name
        #: union core universe in declaration order (first definition wins),
        #: exactly ``UseCaseSet.all_core_names`` — the trailing placement of
        #: traffic-less cores iterates it in this order.
        self.cores: Tuple[Core, ...] = use_case_set.all_cores()
        self.core_names: Tuple[str, ...] = tuple(core.name for core in self.cores)
        self.core_index: Dict[str, int] = {
            name: index for index, name in enumerate(self.core_names)
        }
        self.use_cases: Tuple[CompiledUseCase, ...] = tuple(
            CompiledUseCase(use_case, self.core_index) for use_case in use_case_set
        )
        self._by_name: Dict[str, CompiledUseCase] = {
            uc.name: uc for uc in self.use_cases
        }
        #: ordered hash: member content hashes in declaration order plus the
        #: core-universe order — covers everything Algorithm 2 observes.
        self.spec_hash: str = _hash_blob(
            ["spec", *(uc.content_hash for uc in self.use_cases), "coreorder",
             *self.core_names]
        )
        #: resolved-groups tuple -> Tuple[CompiledGroup, ...]
        self._group_cache: Dict[Tuple[FrozenSet[str], ...], Tuple[CompiledGroup, ...]] = {}

    # ------------------------------------------------------------------ #
    # UseCaseSet-compatible queries (what group resolution needs)
    # ------------------------------------------------------------------ #
    @property
    def names(self) -> Tuple[str, ...]:
        """Names of all use-cases in declaration order."""
        return tuple(uc.name for uc in self.use_cases)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> CompiledUseCase:
        try:
            return self._by_name[name]
        except KeyError:
            raise SpecificationError(
                f"no use-case named {name!r} in compiled spec {self.name!r}; "
                f"known: {sorted(self._by_name)}"
            ) from None

    def __len__(self) -> int:
        return len(self.use_cases)

    def groups_for(
        self, resolved_groups: Tuple[FrozenSet[str], ...]
    ) -> Tuple[CompiledGroup, ...]:
        """Compiled groups for one resolved grouping (cached per grouping)."""
        cached = self._group_cache.get(resolved_groups)
        if cached is not None:
            return cached
        groups = tuple(
            CompiledGroup(group_id, [self[name] for name in sorted(group)])
            for group_id, group in enumerate(resolved_groups)
        )
        self._group_cache[resolved_groups] = groups
        return groups

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledSpec(name={self.name!r}, use_cases={len(self.use_cases)}, "
            f"cores={len(self.core_names)}, hash={self.spec_hash[:12]})"
        )


def compile_spec(use_cases: UseCaseSet) -> CompiledSpec:
    """Compile (and freeze) a use-case set into an immutable spec."""
    return CompiledSpec(use_cases)
