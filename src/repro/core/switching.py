"""Switching graph and use-case grouping (design-flow phase 2, Algorithm 1).

Between two use-cases the NoC paths and TDMA slot tables can be
*re-configured* — but only when the use-case switching time is long enough
(hundreds of microseconds to milliseconds) and the switch does not have to be
*smooth*.  Use-cases that require smooth switching (the ``SUC`` input of the
methodology, plus — automatically — every use-case that participates in a
compound mode together with that compound mode) must share one NoC
configuration.

Definition 1 of the paper captures this as an undirected *switching graph*
``SG(SV, SE)``: vertices are use-cases, an edge means "these two use-cases
need smooth switching".  Algorithm 1 groups the vertices into connected
components; each component shares a single NoC configuration during mapping.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

import networkx as nx

from repro.core.usecase import UseCase, UseCaseSet
from repro.exceptions import SpecificationError

__all__ = ["SwitchingGraph", "group_use_cases"]


class SwitchingGraph:
    """Undirected graph of smooth-switching requirements between use-cases.

    The graph always contains one vertex per use-case of the design, even if
    the use-case has no smooth-switching constraints (it then forms a
    singleton group, i.e. it gets its own re-configurable NoC configuration).
    """

    def __init__(self, use_case_names: Iterable[str] = ()) -> None:
        self._graph = nx.Graph()
        for name in use_case_names:
            self.add_use_case(name)

    @classmethod
    def from_use_case_set(
        cls,
        use_cases: UseCaseSet,
        smooth_pairs: Iterable[Tuple[str, str]] = (),
        include_compound_members: bool = True,
    ) -> "SwitchingGraph":
        """Build the switching graph for a design.

        Parameters
        ----------
        use_cases:
            The full (already compound-expanded) use-case set.
        smooth_pairs:
            The ``SUC`` designer input: pairs of use-case names that require
            smooth switching.
        include_compound_members:
            When True (the paper's behaviour), every compound use-case is
            connected to each of its constituent use-cases, because the
            transition from single-use-case mode to the parallel mode must
            be smooth and therefore cannot re-configure the network.
        """
        graph = cls(use_cases.names)
        for first, second in smooth_pairs:
            graph.require_smooth_switching(first, second, known=use_cases)
        if include_compound_members:
            for use_case in use_cases:
                if not use_case.is_compound:
                    continue
                for parent in use_case.parents:
                    if parent in use_cases:
                        graph.require_smooth_switching(use_case.name, parent, known=use_cases)
        return graph

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_use_case(self, name: str) -> None:
        """Add a vertex for a use-case (idempotent)."""
        if not name:
            raise SpecificationError("use-case name must be non-empty")
        self._graph.add_node(name)

    def require_smooth_switching(
        self,
        first: str,
        second: str,
        known: UseCaseSet | None = None,
    ) -> None:
        """Record that ``first`` and ``second`` must share a NoC configuration."""
        if first == second:
            raise SpecificationError(
                f"a use-case cannot require smooth switching with itself ({first!r})"
            )
        if known is not None:
            for name in (first, second):
                if name not in known:
                    raise SpecificationError(
                        f"smooth-switching constraint references unknown use-case {name!r}"
                    )
        self._graph.add_edge(first, second)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def use_case_names(self) -> Tuple[str, ...]:
        """All use-case vertices."""
        return tuple(self._graph.nodes())

    @property
    def edges(self) -> Tuple[Tuple[str, str], ...]:
        """All smooth-switching edges."""
        return tuple(self._graph.edges())

    def requires_smooth_switching(self, first: str, second: str) -> bool:
        """Whether the two use-cases have a direct smooth-switching edge."""
        return self._graph.has_edge(first, second)

    def shares_configuration(self, first: str, second: str) -> bool:
        """Whether the two use-cases end up in the same configuration group.

        True when they are connected (possibly transitively) in the
        switching graph — i.e. reachable from each other, exactly the
        grouping criterion of Algorithm 1.
        """
        if first not in self._graph or second not in self._graph:
            return False
        if first == second:
            return True
        return nx.has_path(self._graph, first, second)

    def groups(self) -> List[FrozenSet[str]]:
        """Algorithm 1: group use-cases that must share one configuration.

        The paper's algorithm repeatedly performs a depth-first search from
        an unvisited vertex and groups all vertices reached — i.e. it
        computes the connected components of the switching graph.  We
        implement it literally (iterative DFS) so the correspondence with
        Algorithm 1 is obvious; the result equals
        ``networkx.connected_components``.

        Returns the groups ordered by the first appearance of any member in
        the graph's insertion order, which keeps results deterministic.
        """
        unvisited: Set[str] = set(self._graph.nodes())
        order: Dict[str, int] = {name: idx for idx, name in enumerate(self._graph.nodes())}
        groups: List[FrozenSet[str]] = []
        # Step 2: pick unvisited vertices in deterministic (insertion) order.
        for vertex in self._graph.nodes():
            if vertex not in unvisited:
                continue
            # Step 3: depth-first search from the chosen vertex.
            stack = [vertex]
            component: Set[str] = set()
            while stack:
                node = stack.pop()
                if node not in unvisited:
                    continue
                unvisited.discard(node)
                component.add(node)
                for neighbour in self._graph.neighbors(node):
                    if neighbour in unvisited:
                        stack.append(neighbour)
            groups.append(frozenset(component))
        groups.sort(key=lambda grp: min(order[name] for name in grp))
        return groups

    def group_of(self, name: str) -> FrozenSet[str]:
        """The configuration group containing the given use-case."""
        if name not in self._graph:
            raise SpecificationError(f"unknown use-case {name!r} in switching graph")
        for group in self.groups():
            if name in group:
                return group
        raise AssertionError("unreachable: every vertex belongs to a group")

    def group_index(self) -> Dict[str, int]:
        """Map from use-case name to the index of its configuration group."""
        index: Dict[str, int] = {}
        for group_id, group in enumerate(self.groups()):
            for name in group:
                index[name] = group_id
        return index

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SwitchingGraph(use_cases={self._graph.number_of_nodes()}, "
            f"edges={self._graph.number_of_edges()}, groups={len(self.groups())})"
        )


def group_use_cases(
    use_cases: UseCaseSet,
    smooth_pairs: Sequence[Tuple[str, str]] = (),
    include_compound_members: bool = True,
) -> List[FrozenSet[str]]:
    """Convenience wrapper: build the switching graph and return its groups.

    This is the function most callers (and the design flow) use; build a
    :class:`SwitchingGraph` explicitly when you need incremental edits or
    the per-pair queries.
    """
    graph = SwitchingGraph.from_use_case_set(
        use_cases,
        smooth_pairs=smooth_pairs,
        include_compound_members=include_compound_members,
    )
    return graph.groups()
