"""Incremental repair of a mapping after link/switch failures.

The failure-aware counterpart of a full remap: given a baseline
:class:`~repro.core.result.MappingResult` and a
:class:`~repro.noc.failures.FailureSet`, :func:`repair_mapping`

1. derives the degraded topology (:meth:`Topology.with_failures`),
2. identifies only the smooth-switching groups whose placements or paths
   touch failed resources (everything else keeps its baseline allocations
   verbatim — they used only surviving resources, so they are still valid),
3. relocates cores displaced from failed switches with a greedy
   least-cost search scored by the engine's memoised fixed-placement group
   evaluations, and
4. re-evaluates just the affected groups through the engine's cached /
   store-backed evaluation path.

Because step 4 goes through :class:`MappingEngine`'s evaluation cache, a
repair warm-started from an :class:`~repro.jobs.store.EngineStateStore` that
a previous (cold) repair populated performs **zero** evaluation misses — and
the degraded topology's content hash keys that state, so warm state is never
reused across different failure sets.

Unrepairable designs degrade gracefully: the outcome lists the use cases
whose groups cannot be mapped on the degraded topology instead of raising.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.engine import MappingEngine
from repro.core.result import MappingResult, UseCaseConfiguration
from repro.exceptions import MappingError, RoutingError

#: evaluation failures that mean "infeasible on this degraded topology",
#: not "bug" — a failure set that partitions the mesh surfaces as
#: RoutingError (no path between switches), not MappingError
_INFEASIBLE = (MappingError, RoutingError)
from repro.noc.failures import FailureSet
from repro.noc.topology import Topology

__all__ = ["RepairOutcome", "repair_mapping", "total_communication_cost"]


def total_communication_cost(result: MappingResult) -> float:
    """Σ bandwidth × hops over every configuration of a mapping result."""
    cached = getattr(result, "cached_communication_cost", None)
    if cached is not None:
        return cached
    return sum(
        configuration.total_bandwidth_hops()
        for configuration in result.configurations.values()
    )


@dataclass
class RepairOutcome:
    """Everything a failure repair produced, including the failure cases.

    ``repaired`` is ``None`` when the design cannot be mapped on the
    degraded topology; ``unrepairable`` then names the use cases whose
    groups are infeasible (graceful degradation — callers decide whether to
    shed those use cases, fall back to a full remap at another operating
    point, or escalate).
    """

    failures: FailureSet
    degraded_topology: Topology
    baseline_cost: float
    affected_group_ids: Tuple[int, ...] = ()
    changed_use_cases: Tuple[str, ...] = ()
    displaced_cores: Tuple[str, ...] = ()
    repaired: Optional[MappingResult] = None
    repaired_cost: Optional[float] = None
    unrepairable: Tuple[str, ...] = ()
    groups_total: int = 0
    evaluations: Dict[str, int] = field(default_factory=dict)
    elapsed_s: float = 0.0
    full_remap: Optional[MappingResult] = None
    full_remap_cost: Optional[float] = None
    full_remap_elapsed_s: Optional[float] = None

    def metrics(self) -> Dict:
        """JSON-ready recovery metrics (the RepairJob payload core)."""
        delta = (
            None if self.repaired_cost is None
            else self.repaired_cost - self.baseline_cost
        )
        document = {
            "failures": self.failures.describe(),
            "degraded_topology": self.degraded_topology.name,
            "repaired": self.repaired is not None,
            "groups_total": self.groups_total,
            "groups_remapped": len(self.affected_group_ids),
            "affected_group_ids": list(self.affected_group_ids),
            "displaced_cores": list(self.displaced_cores),
            "unrepairable": list(self.unrepairable),
            "baseline_cost": self.baseline_cost,
            "repaired_cost": self.repaired_cost,
            "cost_delta": delta,
            "evaluations": dict(self.evaluations),
            "elapsed_s": round(self.elapsed_s, 6),
        }
        # Omitted when empty so pure-failure repair payloads (and their
        # content hashes — the persistent cache keys) are unchanged.
        if self.changed_use_cases:
            document["changed_use_cases"] = list(self.changed_use_cases)
        if self.full_remap_cost is not None or self.full_remap_elapsed_s is not None:
            document["full_remap_cost"] = self.full_remap_cost
            document["full_remap_elapsed_s"] = (
                None if self.full_remap_elapsed_s is None
                else round(self.full_remap_elapsed_s, 6)
            )
            if self.repaired_cost is not None and self.full_remap_cost is not None:
                document["cost_delta_vs_full_remap"] = (
                    self.repaired_cost - self.full_remap_cost
                )
        return document


def _endpoint_cores(bundle, group_id: int) -> FrozenSet[str]:
    names = bundle.spec_core_names
    return frozenset(names[index] for index in bundle.group_endpoints[group_id])


def _affected_groups(bundle, baseline: MappingResult, failures: FailureSet,
                     displaced: Set[str],
                     changed_use_cases: FrozenSet[str] = frozenset()) -> Set[int]:
    """Group ids whose endpoint placement or allocation paths touch failures.

    ``changed_use_cases`` extends the failure criterion with traffic deltas:
    a group containing a re-characterised use case carries baseline
    allocations computed for the *old* bandwidths, so it must be re-evaluated
    against the new spec even if none of its paths touch a failed resource.
    """
    affected: Set[int] = set()
    for requirement in bundle.requirements:
        group_id = requirement.group_id
        if displaced & _endpoint_cores(bundle, group_id):
            affected.add(group_id)
            continue
        if changed_use_cases & set(requirement.member_names):
            affected.add(group_id)
            continue
        for name in requirement.member_names:
            configuration = baseline.configurations.get(name)
            if configuration is None:
                continue
            if any(failures.affects_path(allocation.switch_path)
                   for allocation in configuration):
                affected.add(group_id)
                break
    return affected


def _subset_configurations(bundle, outcomes, subset: FrozenSet[int]):
    """Materialise the affected groups' configurations in global order.

    Mirrors :meth:`MappingEngine._walk_outcomes` restricted to a subset of
    groups: allocations and float cost accumulations happen in the exact
    order the general path records them, which keeps repaired results
    bit-identical between warm and cold engines.
    """
    configurations: Dict[str, UseCaseConfiguration] = {}
    cost_sums: Dict[str, float] = {}
    for requirement in bundle.requirements:
        if requirement.group_id not in subset:
            continue
        for name in requirement.member_names:
            cost_sums[name] = 0.0
            configurations[name] = UseCaseConfiguration(name, requirement.group_id)
    entry_lists = {gid: outcomes[gid].entries for gid in subset}
    cursor: Dict[int, int] = {gid: 0 for gid in subset}
    for pair_req in bundle.order:
        group_id = pair_req.group_id
        if group_id not in subset:
            continue
        index = cursor[group_id]
        cursor[group_id] = index + 1
        entry = entry_lists[group_id][index]
        terms = entry.cost_terms
        for position, (name, allocation) in enumerate(entry.allocations()):
            configurations[name].add(allocation)
            cost_sums[name] = cost_sums[name] + terms[position]
    return configurations, cost_sums


def _alive_candidates(degraded: Topology, placement: Dict[str, int],
                      limit: Optional[int]) -> List[int]:
    """Alive switches with room for one more core, sorted by index."""
    occupancy: Dict[int, int] = {}
    for switch in placement.values():
        occupancy[switch] = occupancy.get(switch, 0) + 1
    return [
        switch.index for switch in degraded.alive_switches
        if limit is None or occupancy.get(switch.index, 0) < limit
    ]


def _probe_unrepairable(engine: MappingEngine, bundle, degraded: Topology,
                        placement: Dict[str, int],
                        subset: FrozenSet[int]) -> Tuple[str, ...]:
    """Which use cases belong to groups infeasible under ``placement``.

    Probes each affected group independently through the mapper's
    fixed-placement evaluator; a group that cannot route around the failures
    contributes its member use cases.  Never raises.
    """
    unrepairable: List[str] = []
    for requirement in bundle.requirements:
        group_id = requirement.group_id
        if group_id not in subset:
            continue
        try:
            outcome = engine.mapper.evaluate_group_fixed(
                degraded, group_id, bundle.group_plans[group_id], placement
            )
        except Exception:  # noqa: BLE001 - a probe must never raise
            outcome = None
        if outcome is None:
            unrepairable.extend(requirement.member_names)
    return tuple(sorted(unrepairable))


def repair_mapping(
    engine: MappingEngine,
    use_cases,
    baseline: MappingResult,
    failures: FailureSet,
    groups=None,
    compare_full_remap: bool = False,
    changed_use_cases: Sequence[str] = (),
) -> RepairOutcome:
    """Repair a baseline mapping after a failure set, remapping only what broke.

    Parameters
    ----------
    engine:
        The :class:`MappingEngine` to evaluate with.  Attach a store to
        warm-start the repair from previously computed degraded-topology
        evaluations.
    use_cases:
        The design the baseline maps (a :class:`UseCaseSet` or compiled spec).
    baseline:
        The pre-failure mapping (its topology is the pristine substrate).
    failures:
        The failure set to repair around; validated against the baseline
        topology (unknown or overlapping ids raise
        :class:`~repro.exceptions.TopologyError`).
    groups:
        Explicit smooth-switching groups; defaults to the baseline's.
    compare_full_remap:
        Also run a from-scratch remap on the degraded topology (free
        placement, same fixed topology) and report its cost and wall time.
    changed_use_cases:
        Names of use cases whose traffic was re-characterised since the
        baseline was computed.  ``use_cases`` must already carry the *new*
        bandwidths; every group containing one of these use cases joins the
        affected set and is re-evaluated (the traffic-delta splice path of
        :class:`repro.ops.monitor.Monitor`), while untouched groups keep
        their baseline allocations verbatim as usual.
    """
    started = time.perf_counter()
    failures = failures.copy()
    failures.validate_for(baseline.topology)
    degraded = baseline.topology.with_failures(failures)

    spec = engine.compile(use_cases)
    if groups is None:
        groups = [sorted(group) for group in baseline.groups]
    resolved = engine.resolve_groups(spec, groups)
    bundle = engine.requirements_for(spec, resolved)
    baseline_cost = total_communication_cost(baseline)

    counter_keys = ("evaluation_hits", "evaluation_misses", "imported_evaluations")
    before = {key: engine.cache_info()[key] for key in counter_keys}

    def finish(outcome: RepairOutcome) -> RepairOutcome:
        after = engine.cache_info()
        outcome.evaluations = {key: after[key] - before[key] for key in counter_keys}
        outcome.elapsed_s = time.perf_counter() - started
        if compare_full_remap:
            remap_started = time.perf_counter()
            try:
                full = engine.mapper.map_with_placement(
                    spec.use_case_set, degraded, {}, groups=resolved,
                    method_name="unified-full-remap", validate=False,
                )
            except _INFEASIBLE:
                full = None
            outcome.full_remap_elapsed_s = time.perf_counter() - remap_started
            outcome.full_remap = full
            outcome.full_remap_cost = (
                None if full is None else total_communication_cost(full)
            )
        return outcome

    # ------------------------------------------------------------------ #
    # 1. what broke: displaced cores and affected groups
    # ------------------------------------------------------------------ #
    displaced = sorted(
        core for core, switch in baseline.core_mapping.items()
        if failures.affects_switch(switch)
    )
    changed = frozenset(changed_use_cases)
    affected = frozenset(
        sorted(_affected_groups(bundle, baseline, failures, set(displaced), changed))
    )
    outcome = RepairOutcome(
        failures=failures,
        degraded_topology=degraded,
        baseline_cost=baseline_cost,
        affected_group_ids=tuple(sorted(affected)),
        changed_use_cases=tuple(sorted(changed)),
        displaced_cores=tuple(displaced),
        groups_total=len(bundle.requirements),
    )
    if not affected and not displaced:
        # Nothing the design uses failed: the baseline, re-homed onto the
        # degraded topology, is already the repair.
        placement = dict(baseline.core_mapping)
        configurations = {
            name: baseline.configurations[name]
            for requirement in bundle.requirements
            for name in requirement.member_names
            if name in baseline.configurations
        }
        outcome.repaired = _assemble(engine, degraded, placement, resolved,
                                     configurations, baseline_cost)
        outcome.repaired_cost = baseline_cost
        return finish(outcome)

    # ------------------------------------------------------------------ #
    # 2. relocate displaced cores (greedy least-cost, deterministic)
    # ------------------------------------------------------------------ #
    placement = dict(baseline.core_mapping)
    limit = engine.params.max_cores_per_switch
    stuck: List[str] = []
    # Provisional pass: every displaced core needs *some* alive home before
    # any candidate placement validates (a trial with another core still on
    # a dead switch would be rejected wholesale).
    for core in displaced:
        candidates = _alive_candidates(degraded, placement, limit)
        candidates = [index for index in candidates if index != placement[core]]
        if not candidates:
            stuck.append(core)
            continue
        placement[core] = candidates[0]
    if stuck:
        unrepairable = sorted({
            name
            for requirement in bundle.requirements
            for name in requirement.member_names
            if set(stuck) & _endpoint_cores(bundle, requirement.group_id)
        }) or sorted(name for req in bundle.requirements for name in req.member_names)
        outcome.unrepairable = tuple(unrepairable)
        return finish(outcome)

    def subset_cost(trial: Dict[str, int]) -> float:
        outcomes = engine._evaluate_groups(bundle, degraded, trial, only=affected)
        total = 0.0
        for requirement in bundle.requirements:
            if requirement.group_id in affected:
                total += sum(
                    outcomes[requirement.group_id].name_sums(requirement.member_names)
                )
        return total

    # Improvement pass: move each displaced core to its least-cost feasible
    # home, scored on the affected groups only (untouched groups are
    # placement-invariant here, so their cost is a constant offset).
    for core in displaced:
        best: Optional[Tuple[float, int]] = None
        for candidate in _alive_candidates(degraded, {
            name: switch for name, switch in placement.items() if name != core
        }, limit):
            trial = dict(placement)
            trial[core] = candidate
            try:
                cost = subset_cost(trial)
            except _INFEASIBLE:
                continue
            if best is None or (cost, candidate) < best:
                best = (cost, candidate)
        if best is not None:
            placement[core] = best[1]

    # ------------------------------------------------------------------ #
    # 3. final evaluation of the affected groups, splice, assemble
    # ------------------------------------------------------------------ #
    try:
        outcomes = engine._evaluate_groups(bundle, degraded, placement, only=affected)
    except _INFEASIBLE:
        outcome.unrepairable = _probe_unrepairable(
            engine, bundle, degraded, placement, affected
        )
        return finish(outcome)

    repaired_configs, cost_sums = _subset_configurations(bundle, outcomes, affected)
    configurations: Dict[str, UseCaseConfiguration] = {}
    total_cost = 0.0
    for requirement in bundle.requirements:
        for name in requirement.member_names:
            if requirement.group_id in affected:
                configurations[name] = repaired_configs[name]
                total_cost += cost_sums[name]
            elif name in baseline.configurations:
                configurations[name] = baseline.configurations[name]
                total_cost += baseline.configurations[name].total_bandwidth_hops()

    outcome.repaired = _assemble(engine, degraded, placement, resolved,
                                 configurations, total_cost)
    outcome.repaired_cost = total_cost
    return finish(outcome)


def _assemble(engine, degraded, placement, resolved, configurations, total_cost):
    result = MappingResult(
        method="unified-repair",
        topology=degraded,
        params=engine.params,
        config=engine.config,
        core_mapping=dict(placement),
        groups=resolved,
        configurations=configurations,
        attempted_topologies=(degraded.name,),
    )
    result.cached_communication_cost = total_cost
    return result
