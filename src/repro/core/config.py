"""Convenience re-exports of the parameter objects used by the core algorithms.

The actual definitions live in :mod:`repro.params` (kept free of any other
library dependency so the NoC substrate can use them without import cycles);
this module exists so that user code can import everything algorithm-related
from :mod:`repro.core`.
"""

from repro.params import MapperConfig, NoCParameters

__all__ = ["MapperConfig", "NoCParameters"]
