"""Exception hierarchy for the ``repro`` multi-use-case NoC mapping library.

All library-specific errors derive from :class:`ReproError`, so callers can
catch a single base class at the API boundary while still being able to
distinguish the individual failure modes programmatically.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class SpecificationError(ReproError):
    """An input specification (core, flow, use-case, constraint) is invalid.

    Raised during construction or validation of the use-case model, e.g. a
    flow with negative bandwidth, a duplicate core name or a flow referencing
    a core that does not exist in the design.
    """


class TopologyError(ReproError):
    """A NoC topology is malformed or an operation referenced a missing element.

    Examples: asking for a link that does not exist, constructing a mesh with
    zero rows, or attaching a core to an unknown switch.
    """


class RoutingError(ReproError):
    """No admissible path could be found for a traffic flow.

    This is an *expected* error during mapping (it triggers growing the
    topology or trying another placement); it becomes a hard failure only
    when the topology cannot be grown further.
    """


class ResourceError(ReproError):
    """A bandwidth or TDMA-slot reservation could not be satisfied."""


class MappingError(ReproError):
    """The unified mapping algorithm could not produce a valid mapping.

    Carries the largest topology attempted so that callers (and the
    benchmark harness) can report *why* a method failed — the paper reports
    exactly this situation for the worst-case baseline at 40 use-cases.
    """

    def __init__(self, message: str, largest_topology: str | None = None):
        super().__init__(message)
        self.largest_topology = largest_topology


class ConfigurationError(ReproError):
    """A mapper / NoC parameter object is inconsistent.

    Examples: zero TDMA slots, non-positive frequency, a maximum mesh size
    smaller than the minimum mesh size.
    """


class ExactBackendUnavailable(ConfigurationError):
    """The exact (ILP) mapping backend was requested but cannot run.

    Raised when ``MapperConfig(backend="ilp")`` selects a solver whose
    optional dependency (e.g. ``pulp``) is not installed.  Subclasses
    :class:`ConfigurationError` so existing ``except ReproError`` /
    ``except ConfigurationError`` boundaries render it as an ordinary
    one-line configuration failure.
    """


class VerificationError(ReproError):
    """A produced mapping violates the constraints it claims to satisfy.

    Raised by :mod:`repro.perf.verification` when analytical re-checking or
    simulation of a :class:`~repro.core.result.MappingResult` finds a flow
    whose bandwidth or latency constraint is not actually met.
    """


class SerializationError(ReproError):
    """A document could not be parsed into (or produced from) the data model."""
