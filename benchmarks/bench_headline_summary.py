"""§6.2 / §6.4 headline numbers: average area reduction and DVS/DFS power saving.

The paper's abstract claims "a large reduction in NoC area (an average of
80%) and power consumption (an average of 54%) compared to traditional
design approaches".  This bench regenerates both averages over the SoC
designs plus two synthetic benchmarks (one Sp, one Bot), which is the mix the
abstract's averages are drawn from.
"""

from repro.analysis import headline_summary
from repro.gen import generate_benchmark, standard_designs
from repro.io import format_summary


def _designs():
    designs = {name: design.use_cases for name, design in standard_designs().items()}
    designs["Sp-10uc"] = generate_benchmark("spread", 10, seed=3)
    designs["Bot-10uc"] = generate_benchmark("bottleneck", 10, seed=3)
    return designs


def test_headline_summary(benchmark, once):
    summary = once(benchmark, headline_summary, _designs())
    print()
    print(format_summary(summary, title="Headline summary (paper: ~80% area, ~54% power)"))
    assert summary["average_dvfs_savings_percent"] is not None
    assert summary["average_area_reduction_percent"] is not None
    # The proposed method reduces area on average (the magnitude depends on
    # the synthetic stand-in workloads; the direction must hold).
    assert summary["average_area_reduction_percent"] >= 0.0
