"""Shared helpers for the figure-regeneration benchmark harness.

Every ``bench_fig*`` module regenerates the data behind one table or figure
of the paper's evaluation section and prints it (so the console output of
``pytest benchmarks/ --benchmark-only`` is the reproduced dataset), while
pytest-benchmark records how long the regeneration takes.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments themselves are deterministic and comparatively slow
    (they run the full mapper many times), so one round is both sufficient
    and necessary to keep the harness runtime reasonable.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    """Fixture exposing :func:`run_once`."""
    return run_once
