"""Mapper runtime benchmarks (§6.2: "both methods produced results in minutes").

These are conventional pytest-benchmark micro-benchmarks: they time a single
mapping run of the proposed method on a SoC design and on a synthetic
benchmark, confirming the heuristic's runtime stays in the interactive range
the paper reports.
"""

from repro import UnifiedMapper, WorstCaseMapper
from repro.gen import generate_benchmark, set_top_box_design


def test_unified_mapping_runtime_d1(benchmark):
    design = set_top_box_design(use_case_count=4)
    result = benchmark(lambda: UnifiedMapper().map(design.use_cases))
    assert result.switch_count >= 1


def test_unified_mapping_runtime_spread_10uc(benchmark):
    use_cases = generate_benchmark("spread", 10, seed=3)
    result = benchmark(lambda: UnifiedMapper().map(use_cases))
    assert result.switch_count >= 1


def test_unified_mapping_runtime_spread_40uc(benchmark):
    # The paper's largest synthetic sweep point (§6.2); kept fast by the
    # bitmask/incremental hot path (see PERFORMANCE.md).
    use_cases = generate_benchmark("spread", 40, seed=3)
    result = benchmark(lambda: UnifiedMapper().map(use_cases))
    assert result.switch_count >= 1


def test_worst_case_mapping_runtime_d1(benchmark):
    design = set_top_box_design(use_case_count=4)
    result = benchmark(lambda: WorstCaseMapper().map(design.use_cases))
    assert result.switch_count >= 1
