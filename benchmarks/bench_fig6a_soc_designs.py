"""Figure 6(a): switch count of the proposed method vs. the WC baseline on D1-D4.

Regenerates the per-design normalised switch counts (proposed / worst-case)
for the four SoC designs at the paper's reference operating point (500 MHz,
32-bit links).
"""

from repro.analysis import normalized_switch_count_study
from repro.io import format_rows


def test_fig6a_soc_designs(benchmark, once):
    rows = once(benchmark, normalized_switch_count_study)
    print()
    print(format_rows(
        rows,
        columns=["label", "unified_switches", "worst_case_switches",
                 "normalized_switch_count", "area_reduction"],
        title="Figure 6(a) — SoC designs D1-D4 (normalised switch count, proposed vs. WC)",
    ))
    assert len(rows) == 4
    for row in rows:
        assert row["unified_switches"] is not None
        if row["worst_case_switches"] is not None:
            assert row["unified_switches"] <= row["worst_case_switches"]
