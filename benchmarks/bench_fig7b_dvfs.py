"""Figure 7(b): power savings from per-use-case DVS/DFS on the SoC designs.

For every design D1-D4 the proposed method's mapping is analysed: each
use-case (or smooth-switching group) runs at the minimum frequency that
still meets its bandwidth needs, with the supply voltage scaled as V² ∝ f.
The saving is reported against always running at the design frequency.
"""

from repro import UnifiedMapper
from repro.gen import standard_designs
from repro.io import format_rows
from repro.power import analyze_dvfs


def _study():
    rows = []
    for name, design in standard_designs().items():
        result = UnifiedMapper().map(design.use_cases)
        dvfs = analyze_dvfs(result)
        rows.append(
            {
                "design": name,
                "use_cases": design.use_case_count,
                "switches": result.switch_count,
                "power_no_dvfs_mw": dvfs.power_without_dvfs * 1e3,
                "power_dvfs_mw": dvfs.power_with_dvfs * 1e3,
                "savings_percent": dvfs.savings_percent,
            }
        )
    return rows


def test_fig7b_dvfs_savings(benchmark, once):
    rows = once(benchmark, _study)
    print()
    print(format_rows(
        rows,
        columns=["design", "use_cases", "switches", "power_no_dvfs_mw",
                 "power_dvfs_mw", "savings_percent"],
        title="Figure 7(b) — DVS/DFS power savings per SoC design",
    ))
    average = sum(row["savings_percent"] for row in rows) / len(rows)
    print(f"Average DVS/DFS power saving: {average:.1f}% (paper reports ~54%)")
    assert len(rows) == 4
    assert all(0.0 <= row["savings_percent"] <= 100.0 for row in rows)
    assert average > 20.0
