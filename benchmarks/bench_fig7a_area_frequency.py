"""Figure 7(a): area-frequency trade-off (Pareto curve) for the D1 design.

Sweeps the NoC operating frequency, re-maps the D1 set-top-box design at
every point and reports the resulting switch count and total switch area.
Low frequencies need large networks (or become infeasible); high frequencies
shrink the network to the minimum imposed by the NI-per-switch limit.
"""

from repro.gen import set_top_box_design
from repro.io import format_rows
from repro.power import area_frequency_tradeoff, pareto_front


def _sweep():
    design = set_top_box_design(use_case_count=4)
    return area_frequency_tradeoff(design.use_cases)


def test_fig7a_area_frequency_tradeoff(benchmark, once):
    points = once(benchmark, _sweep)
    rows = [
        {
            "frequency_mhz": point.frequency_mhz,
            "feasible": point.feasible,
            "switch_count": point.switch_count if point.feasible else None,
            "area_mm2": point.area_mm2 if point.feasible else None,
        }
        for point in points
    ]
    print()
    print(format_rows(
        rows,
        columns=["frequency_mhz", "feasible", "switch_count", "area_mm2"],
        title="Figure 7(a) — Area-frequency trade-off for D1 (set-top box, 4 use-cases)",
    ))
    front = pareto_front(points)
    print(f"Pareto-optimal points: {[(p.frequency_mhz, round(p.area_mm2, 3)) for p in front]}")

    feasible = [point for point in points if point.feasible]
    assert feasible, "D1 must be mappable somewhere on the sweep"
    # Switch count is non-increasing with frequency (more bandwidth per link
    # never requires a larger network).
    counts = [point.switch_count for point in feasible]
    assert counts == sorted(counts, reverse=True)
