"""Figure 6(c): normalised switch count vs. #use-cases for Bottleneck (Bot) benchmarks.

Same sweep as Figure 6(b) but with bottleneck (shared external memory style)
traffic, where one or two hub cores attract most of the communication.
"""

from repro.analysis import use_case_count_sweep
from repro.io import format_rows

USE_CASE_COUNTS = (2, 5, 10, 15, 20)


def test_fig6c_bottleneck_benchmarks(benchmark, once):
    rows = once(benchmark, use_case_count_sweep, "bottleneck", USE_CASE_COUNTS)
    print()
    print(format_rows(
        rows,
        columns=["use_cases", "unified_switches", "worst_case_switches",
                 "normalized_switch_count"],
        title="Figure 6(c) — Bottleneck (Bot) benchmarks, 20 cores",
    ))
    assert len(rows) == len(USE_CASE_COUNTS)
    ratios = [row["normalized_switch_count"] for row in rows
              if row["normalized_switch_count"] is not None]
    assert all(ratio <= 1.0 for ratio in ratios)
    assert ratios[-1] <= ratios[0]
