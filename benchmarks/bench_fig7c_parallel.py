"""Figure 7(c): required NoC frequency vs. number of use-cases running in parallel.

A 20-core, 10-use-case Spread benchmark; 1 to 4 of its use-cases are declared
to run in parallel (compound modes are generated automatically), the topology
size is pinned, and the study reports the lowest clock frequency at which the
resulting use-case set can still be mapped.
"""

from repro.analysis import parallel_use_case_study
from repro.io import format_rows
from repro.units import mhz

FREQUENCY_GRID = tuple(mhz(value) for value in range(100, 2001, 100))


def _study():
    return parallel_use_case_study(parallelism_levels=(1, 2, 3, 4))


def test_fig7c_parallel_use_cases(benchmark, once):
    rows = once(benchmark, _study)
    print()
    print(format_rows(
        rows,
        columns=["parallel_use_cases", "required_frequency_mhz"],
        title="Figure 7(c) — Required NoC frequency vs. parallel use-cases "
              "(20-core, 10-use-case Sp benchmark)",
    ))
    assert len(rows) == 4
    frequencies = [row["required_frequency_mhz"] for row in rows]
    measured = [f for f in frequencies if f is not None]
    assert measured, "at least the single-use-case point must be feasible"
    # The overall trend is rising: the most parallel point needs the fastest
    # clock and at least as fast a clock as the single-use-case point.  (The
    # greedy mapper makes individual intermediate points slightly noisy.)
    assert measured[-1] >= measured[0]
    assert max(measured) == measured[-1]
