#!/usr/bin/env python
"""Wall-time regression harness for the unified-mapper hot path.

Measures the median and best-of-N mapping wall-times of the three reference
workloads the performance work is judged on (the regression gate compares
best-of-N; the median is recorded for reporting):

* ``set_top_box_4uc``  — the paper's D1 design (4 use-cases),
* ``spread_10uc``      — ``generate_benchmark("spread", 10, seed=3)``,
* ``spread_40uc``      — ``generate_benchmark("spread", 40, seed=3)``
  (the paper's largest synthetic sweep point).

Usage::

    # record a baseline (writes BENCH_mapper.json next to the repo root)
    python benchmarks/bench_regression.py --output BENCH_mapper.json

    # gate a change against the committed baseline (exit code 1 on regression)
    python benchmarks/bench_regression.py --baseline BENCH_mapper.json \
        --tolerance 0.35

Besides timing, every run asserts that the mapping *results* (topology and
switch count) still match the baseline exactly — a faster mapper that maps
differently is a failure, not a win.  The default tolerance is generous
(35 %) because CI machines are noisy; the point is catching the 2-10x
algorithmic regressions that creep in when someone touches the hot loop, not
3 % jitter.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import UnifiedMapper  # noqa: E402
from repro.gen import generate_benchmark, set_top_box_design  # noqa: E402

WORKLOADS = {
    "set_top_box_4uc": lambda: set_top_box_design(use_case_count=4).use_cases,
    "spread_10uc": lambda: generate_benchmark("spread", 10, seed=3),
    "spread_40uc": lambda: generate_benchmark("spread", 40, seed=3),
}


def run_workloads(repeats: int) -> dict:
    """Median/best mapping wall-time plus result shape per workload."""
    results = {}
    for name, build in WORKLOADS.items():
        use_cases = build()
        UnifiedMapper().map(use_cases)  # warm-up (imports, caches)
        times = []
        result = None
        for _ in range(repeats):
            mapper = UnifiedMapper()
            start = time.perf_counter()
            result = mapper.map(use_cases)
            times.append(time.perf_counter() - start)
        results[name] = {
            "median_seconds": statistics.median(times),
            "best_seconds": min(times),
            "repeats": repeats,
            "topology": result.topology.name,
            "switch_count": result.switch_count,
        }
        print(
            f"{name:>18}: median {results[name]['median_seconds'] * 1000:8.2f} ms  "
            f"best {results[name]['best_seconds'] * 1000:8.2f} ms  "
            f"-> {result.topology.name}"
        )
    return results


def compare(baseline: dict, current: dict, tolerance: float) -> list:
    """List of human-readable regression messages (empty when clean)."""
    failures = []
    for name, expected in baseline.items():
        measured = current.get(name)
        if measured is None:
            failures.append(f"{name}: missing from current run")
            continue
        for key in ("topology", "switch_count"):
            if measured[key] != expected[key]:
                failures.append(
                    f"{name}: {key} changed {expected[key]!r} -> {measured[key]!r}"
                )
        # Gate on best-of-N: the minimum is the noise-robust estimator for
        # millisecond-scale workloads (the median of a handful of runs moves
        # with scheduler jitter); the median is still recorded for reporting.
        allowed = expected["best_seconds"] * (1.0 + tolerance)
        if measured["best_seconds"] > allowed:
            failures.append(
                f"{name}: best {measured['best_seconds'] * 1000:.2f} ms exceeds "
                f"baseline {expected['best_seconds'] * 1000:.2f} ms "
                f"+{tolerance * 100:.0f}% (= {allowed * 1000:.2f} ms)"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="mapping runs per workload (median is reported; default 5)",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="write the measured results to this JSON file",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="compare against a previously recorded JSON baseline",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.35,
        help="allowed fractional best-of-N slowdown vs the baseline (default 0.35)",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error(f"--repeats must be at least 1, got {args.repeats}")

    current = run_workloads(args.repeats)
    if args.output is not None:
        args.output.write_text(json.dumps(current, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.output}")
    if args.baseline is not None:
        baseline = json.loads(args.baseline.read_text())
        failures = compare(baseline, current, args.tolerance)
        if failures:
            print("REGRESSION:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print(f"ok: within {args.tolerance * 100:.0f}% of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
