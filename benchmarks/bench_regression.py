#!/usr/bin/env python
"""Wall-time regression harness for the unified-mapper hot path.

Measures the median and best-of-N wall-times of the reference workloads the
performance work is judged on (the regression gate compares best-of-N; the
median is recorded for reporting):

* ``set_top_box_4uc``  — the paper's D1 design (4 use-cases),
* ``spread_10uc``      — ``generate_benchmark("spread", 10, seed=3)``,
* ``spread_40uc``      — ``generate_benchmark("spread", 40, seed=3)``
  (the paper's largest synthetic sweep point),
* ``refine_spread10_annealing`` — a 60-iteration annealing refinement of
  the spread-10 mapping, gating the refinement path: candidate evaluations
  must keep flowing through the ``MappingEngine`` requirement/evaluation
  caches instead of rebuilding ``GroupRequirement``/worklist state per
  candidate,
* ``refine_spread10_warm`` — the same refinement on a fresh engine attached
  to an ``EngineStateStore`` a prior run populated, gating the warm-start
  path: every candidate evaluation must be answered from the store
  (``evaluation_misses == 0``), which is what makes warm service traffic
  cheap,
* ``repair_single_link`` — a warm single-link-failure repair of a
  provisioned spread-10 mapping, gating the splice path: only the affected
  smooth-switching groups are re-evaluated (all from the store), and the
  repair must beat a from-scratch remap of the degraded mesh by at least
  2x wall-time,
* ``refine_spread40`` — the cost-vs-wallclock frontier on the paper's
  largest synthetic sweep point: a screened, seed-diversified tabu
  portfolio sharing one engine versus the serial default refiner at a
  matched wall-clock budget.  The portfolio's best-of improvement must be
  at least 2x the serial improvement (and strictly positive — on this
  design the serial annealing walk plateaus at its budget while the
  portfolio keeps finding better placements),
* ``spread_mesh8x8`` — mapping plus screened refinement of a 100-use-case
  design forced onto an 8x8 mesh, gating the big-mesh path the vectorized
  screen exists for (64 switches, 112 links, thousands of minimal paths),
* ``campaign_mesh8x8`` — one cold end-to-end campaign
  (:mod:`repro.campaign`) over the ``mesh8x8_bottleneck100`` recipe
  (100 use-cases, 48 cores, forced 8x8 mesh): expansion, cell execution
  through the job fabric, settlement and reduction into ``report.json`` /
  ``trajectory.jsonl``, gating the campaign layer's overhead on top of the
  underlying mapping work.

Recorded baselines carry a ``__meta__`` entry (python version, platform,
git commit) so a committed ``BENCH_mapper.json`` says where its numbers
came from; :func:`compare` ignores it.

Usage::

    # record a baseline (writes BENCH_mapper.json next to the repo root)
    python benchmarks/bench_regression.py --output BENCH_mapper.json

    # gate a change against the committed baseline (exit code 1 on regression)
    python benchmarks/bench_regression.py --baseline BENCH_mapper.json \
        --tolerance 0.35

Besides timing, every run asserts that the *results* (topology and switch
count) still match the baseline exactly — a faster mapper that maps
differently is a failure, not a win.  The default tolerance is generous
(35 %) because CI machines are noisy; the point is catching the 2-10x
algorithmic regressions that creep in when someone touches the hot loop, not
3 % jitter.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import AnnealingRefiner, UnifiedMapper  # noqa: E402
from repro.gen import generate_benchmark, set_top_box_design  # noqa: E402


def _mapping_workload(build):
    """A workload that maps a design from scratch with a fresh mapper."""

    def prepare():
        use_cases = build()
        UnifiedMapper().map(use_cases)  # warm-up (imports, process caches)
        return use_cases

    def run(use_cases):
        mapper = UnifiedMapper()
        start = time.perf_counter()
        result = mapper.map(use_cases)
        return time.perf_counter() - start, result

    return prepare, run


def _refinement_workload(build, iterations):
    """A workload that anneals an existing mapping (fresh engine per run)."""

    def prepare():
        use_cases = build()
        result = UnifiedMapper().map(use_cases)
        AnnealingRefiner(iterations=5, seed=0).refine(result, use_cases)  # warm-up
        return use_cases, result

    def run(payload):
        use_cases, result = payload
        refiner = AnnealingRefiner(iterations=iterations, seed=0)
        start = time.perf_counter()
        outcome = refiner.refine(result, use_cases)
        return time.perf_counter() - start, outcome.refined

    return prepare, run


def _warm_refinement_workload(build, iterations):
    """The refinement workload on engines warm-started from a state store.

    ``prepare`` runs the refinement once against a store-attached engine and
    ingests its exports; each timed run then uses a *fresh* engine attached
    to that store, so every candidate evaluation (and the initial mapping)
    is answered from disk — the steady state of a warm sweep farm.  The
    per-run assertions pin that nothing was recomputed.
    """
    import tempfile

    from repro.core.engine import MappingEngine
    from repro.jobs.store import EngineStateStore

    def prepare():
        use_cases = build()
        scratch = tempfile.TemporaryDirectory(prefix="bench-engine-state-")
        store = EngineStateStore(scratch.name)
        engine = MappingEngine()
        initial = engine.map(use_cases)
        AnnealingRefiner(iterations=iterations, seed=0).refine(
            initial, use_cases, engine=engine
        )
        store.ingest(engine.export_results(), engine.export_evaluations())
        # keep the TemporaryDirectory object alive for the timed runs
        return use_cases, scratch

    def run(payload):
        use_cases, scratch = payload
        engine = MappingEngine()
        engine.attach_store(EngineStateStore(scratch.name))
        refiner = AnnealingRefiner(iterations=iterations, seed=0)
        start = time.perf_counter()
        initial = engine.map(use_cases)
        outcome = refiner.refine(initial, use_cases, engine=engine)
        elapsed = time.perf_counter() - start
        info = engine.cache_info()
        assert info["evaluation_misses"] == 0, info
        assert info["result_misses"] == 0, info
        return elapsed, outcome.refined

    return prepare, run


def _repair_workload(build, provision, link, affected_groups):
    """Warm single-link repair of a provisioned baseline, vs a full remap.

    ``prepare`` maps the design onto a provisioned (one-step-larger) mesh,
    repairs it once against a store-attached engine so every affected-group
    evaluation lands in the store, and times a from-scratch remap of the
    degraded mesh (best of three) as the comparison point.  Each timed run
    then repairs with a *fresh* engine attached to that store — the steady
    state of a monitoring loop that remaps around faults as they arrive.
    The per-run assertions pin the splice contract: only the affected
    groups are touched, nothing is recomputed, and the repair beats the
    full remap by at least 2x.
    """
    import tempfile

    from repro.core.engine import MappingEngine
    from repro.core.repair import repair_mapping
    from repro.jobs.store import EngineStateStore
    from repro.noc import FailureSet, Topology

    def prepare():
        use_cases = build()
        scratch = tempfile.TemporaryDirectory(prefix="bench-repair-")
        store = EngineStateStore(scratch.name)
        engine = MappingEngine()
        engine.attach_store(store)
        rows, cols = provision
        baseline = engine.mapper.map_with_placement(
            use_cases, Topology.mesh(rows, cols), {}, validate=False
        )
        failures = FailureSet().mark_link_down(*link)
        repair_mapping(engine, use_cases, baseline, failures)  # warm the store
        store.ingest(engine.export_results(), engine.export_evaluations())
        degraded = baseline.topology.with_failures(failures)
        groups = [sorted(group) for group in baseline.groups]
        full_times = []
        for _ in range(3):
            remap_engine = MappingEngine()
            start = time.perf_counter()
            remap_engine.mapper.map_with_placement(
                use_cases, degraded, {}, groups=groups,
                method_name="unified-full-remap", validate=False,
            )
            full_times.append(time.perf_counter() - start)
        # keep the TemporaryDirectory object alive for the timed runs
        return use_cases, baseline, failures, scratch, min(full_times)

    def run(payload):
        use_cases, baseline, failures, scratch, full_remap_best = payload
        engine = MappingEngine()
        engine.attach_store(EngineStateStore(scratch.name))
        start = time.perf_counter()
        outcome = repair_mapping(engine, use_cases, baseline, failures)
        elapsed = time.perf_counter() - start
        info = engine.cache_info()
        assert info["evaluation_misses"] == 0, info
        assert len(outcome.affected_group_ids) == affected_groups, (
            outcome.affected_group_ids
        )
        assert elapsed * 2.0 <= full_remap_best, (
            f"repair {elapsed * 1000:.2f} ms is not 2x faster than full "
            f"remap {full_remap_best * 1000:.2f} ms"
        )
        return elapsed, outcome.repaired

    return prepare, run


def _portfolio_frontier_workload(build, serial_iterations, chains, chain_iterations):
    """Best-cost-at-fixed-wallclock: screened portfolio vs the serial refiner.

    The serial arm is the pre-portfolio refinement path — one unscreened
    annealing chain (the default refiner) at a wall-clock budget matched to
    the portfolio arm.  The portfolio arm runs ``chains`` screened tabu
    chains with distinct seeds against *one shared engine*, so every
    candidate evaluation a chain performs is recalled (not recomputed) by
    the chains after it — the in-process analogue of portfolio jobs sharing
    an ``EngineStateStore``.  The per-run assertions pin the frontier claim:
    the portfolio's best-of improvement is at least 2x the serial
    improvement, strictly positive, and bought within 2x the serial
    wall-clock.
    """
    from repro.core.engine import MappingEngine
    from repro.optimize import TabuRefiner

    def prepare():
        use_cases = build()
        engine = MappingEngine()
        initial = engine.map(use_cases)
        TabuRefiner(iterations=1, seed=0).refine(initial, use_cases, engine=engine)
        return use_cases

    def run(use_cases):
        serial_engine = MappingEngine()
        serial_initial = serial_engine.map(use_cases)
        start = time.perf_counter()
        serial = AnnealingRefiner(
            iterations=serial_iterations, seed=0, screen=False
        ).refine(serial_initial, use_cases, engine=serial_engine)
        serial_seconds = time.perf_counter() - start
        serial_improvement = serial.initial_cost - serial.refined_cost

        engine = MappingEngine()
        initial = engine.map(use_cases)
        start = time.perf_counter()
        outcomes = [
            TabuRefiner(iterations=chain_iterations, seed=seed).refine(
                initial, use_cases, engine=engine
            )
            for seed in range(chains)
        ]
        elapsed = time.perf_counter() - start
        best = min(outcomes, key=lambda outcome: outcome.refined_cost)
        improvement = best.initial_cost - best.refined_cost
        info = engine.cache_info()
        assert info["screen_misses"] > 0, info
        assert improvement > 0.0, "portfolio found no improvement"
        assert improvement >= 2.0 * max(serial_improvement, 0.0), (
            f"portfolio improvement {improvement:.4g} is not 2x the serial "
            f"refiner's {serial_improvement:.4g}"
        )
        assert elapsed <= serial_seconds * 2.0, (
            f"portfolio {elapsed:.2f} s blew the serial budget "
            f"{serial_seconds:.2f} s"
        )
        extras = {
            "chains": chains,
            "portfolio_improvement": improvement,
            "serial_improvement": serial_improvement,
            "serial_seconds": serial_seconds,
        }
        return elapsed, best.refined, extras

    return prepare, run


def _mesh8x8_workload(build, iterations, neighbours):
    """Map a large design onto a forced 8x8 mesh, then refine it screened.

    The unified flow never *selects* an 8x8 mesh for these designs (a 2x2
    carries them), so the workload places onto ``Topology.mesh(8, 8)``
    directly — the big-mesh regime where per-candidate work is dominated
    by minimal-path enumeration and slot-mask admissibility over 112 links.
    """
    from repro.core.engine import MappingEngine
    from repro.noc import Topology
    from repro.optimize import TabuRefiner

    def prepare():
        use_cases = build()
        engine = MappingEngine()
        baseline = engine.mapper.map_with_placement(
            use_cases, Topology.mesh(8, 8), {}, validate=False
        )
        TabuRefiner(iterations=1, seed=0).refine(baseline, use_cases, engine=engine)
        return use_cases

    def run(use_cases):
        engine = MappingEngine()
        start = time.perf_counter()
        baseline = engine.mapper.map_with_placement(
            use_cases, Topology.mesh(8, 8), {}, validate=False
        )
        outcome = TabuRefiner(
            iterations=iterations, neighbours_per_iteration=neighbours, seed=0
        ).refine(baseline, use_cases, engine=engine)
        elapsed = time.perf_counter() - start
        info = engine.cache_info()
        assert info["screen_misses"] > 0, info
        return elapsed, outcome.refined

    return prepare, run


def _campaign_workload(recipe, iterations):
    """One cold campaign run over a recipe workload, end to end.

    Each timed run executes into a fresh directory (no settled cells, cold
    job cache), so the measurement covers the full campaign path: matrix
    expansion, job hashing, execution, per-cell settlement and the
    reduction into ``report.json``/``trajectory.jsonl``.  The result shim
    carries the single cell's topology/switch-count so the baseline
    comparison still pins the mapping outcome.
    """
    import tempfile
    from types import SimpleNamespace

    from repro.campaign import CampaignRunner, CampaignSpec

    def prepare():
        spec = CampaignSpec.from_dict({
            "name": "bench-mesh8x8",
            "workloads": [{"recipe": recipe}],
            "methods": [{
                "label": "tabu",
                "kind": "refine",
                "knobs": {"method": "tabu", "iterations": iterations},
            }],
        })
        with tempfile.TemporaryDirectory(prefix="bench-campaign-") as scratch:
            CampaignRunner(scratch).run(spec)  # warm-up (imports, process caches)
        return spec

    def run(spec):
        with tempfile.TemporaryDirectory(prefix="bench-campaign-") as scratch:
            start = time.perf_counter()
            summary = CampaignRunner(scratch).run(spec)
            elapsed = time.perf_counter() - start
            report = json.loads(Path(summary["report"]).read_text())
        assert summary["executed"] == summary["cells"], summary
        outcome = report["cells"][0]["outcome"]
        assert outcome["mapped"], outcome
        shim = SimpleNamespace(
            topology=SimpleNamespace(name=outcome["topology"]),
            switch_count=outcome["switch_count"],
        )
        extras = {
            "cells": summary["cells"],
            "best_cost": report["best_known"][recipe]["cost"],
        }
        return elapsed, shim, extras

    return prepare, run


WORKLOADS = {
    "set_top_box_4uc": _mapping_workload(
        lambda: set_top_box_design(use_case_count=4).use_cases
    ),
    "spread_10uc": _mapping_workload(
        lambda: generate_benchmark("spread", 10, seed=3)
    ),
    "spread_40uc": _mapping_workload(
        lambda: generate_benchmark("spread", 40, seed=3)
    ),
    "refine_spread10_annealing": _refinement_workload(
        lambda: generate_benchmark("spread", 10, seed=3), iterations=60
    ),
    "refine_spread10_warm": _warm_refinement_workload(
        lambda: generate_benchmark("spread", 10, seed=3), iterations=60
    ),
    # The sparse spread-10 variant keeps per-group traffic light enough
    # that a single link failure hits a strict subset of the groups (7 of
    # 10) — the scenario splice repair exists for; the dense reference
    # designs route every group over every congested link, which collapses
    # repair into a full re-evaluation.
    "repair_single_link": _repair_workload(
        lambda: generate_benchmark(
            "spread", 10, core_count=16, seed=3, flows_per_use_case=(6, 10)
        ),
        provision=(4, 4), link=(1, 5), affected_groups=7,
    ),
    "refine_spread40": _portfolio_frontier_workload(
        lambda: generate_benchmark("spread", 40, seed=3),
        serial_iterations=30, chains=3, chain_iterations=4,
    ),
    "spread_mesh8x8": _mesh8x8_workload(
        lambda: generate_benchmark(
            "spread", 100, core_count=48, seed=3, flows_per_use_case=(8, 14)
        ),
        iterations=2, neighbours=6,
    ),
    "campaign_mesh8x8": _campaign_workload(
        "mesh8x8_bottleneck100", iterations=2,
    ),
}


def bench_metadata() -> dict:
    """Provenance of a recorded baseline: interpreter, platform, commit."""
    import platform
    import subprocess

    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).resolve().parent,
        ).stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        commit = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "git_commit": commit,
    }


def run_workloads(repeats: int) -> dict:
    """Median/best wall-time plus result shape per workload."""
    results = {}
    for name, (prepare, run) in WORKLOADS.items():
        payload = prepare()
        times = []
        result = None
        extras = {}
        for _ in range(repeats):
            outcome = run(payload)
            elapsed, result = outcome[0], outcome[1]
            extras = outcome[2] if len(outcome) > 2 else {}
            times.append(elapsed)
        results[name] = {
            "median_seconds": statistics.median(times),
            "best_seconds": min(times),
            "repeats": repeats,
            "topology": result.topology.name,
            "switch_count": result.switch_count,
            **extras,
        }
        print(
            f"{name:>26}: median {results[name]['median_seconds'] * 1000:8.2f} ms  "
            f"best {results[name]['best_seconds'] * 1000:8.2f} ms  "
            f"-> {result.topology.name}"
        )
    return results


def compare(baseline: dict, current: dict, tolerance: float) -> list:
    """List of human-readable regression messages (empty when clean)."""
    failures = []
    for name, expected in baseline.items():
        if name == "__meta__":  # provenance, not a workload
            continue
        measured = current.get(name)
        if measured is None:
            failures.append(f"{name}: missing from current run")
            continue
        for key in ("topology", "switch_count"):
            if measured[key] != expected[key]:
                failures.append(
                    f"{name}: {key} changed {expected[key]!r} -> {measured[key]!r}"
                )
        # Gate on best-of-N: the minimum is the noise-robust estimator for
        # millisecond-scale workloads (the median of a handful of runs moves
        # with scheduler jitter); the median is still recorded for reporting.
        allowed = expected["best_seconds"] * (1.0 + tolerance)
        if measured["best_seconds"] > allowed:
            failures.append(
                f"{name}: best {measured['best_seconds'] * 1000:.2f} ms exceeds "
                f"baseline {expected['best_seconds'] * 1000:.2f} ms "
                f"+{tolerance * 100:.0f}% (= {allowed * 1000:.2f} ms)"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="mapping runs per workload (median is reported; default 5)",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="write the measured results to this JSON file",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="compare against a previously recorded JSON baseline",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.35,
        help="allowed fractional best-of-N slowdown vs the baseline (default 0.35)",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error(f"--repeats must be at least 1, got {args.repeats}")

    current = run_workloads(args.repeats)
    if args.output is not None:
        recorded = dict(current, __meta__=bench_metadata())
        args.output.write_text(json.dumps(recorded, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.output}")
    if args.baseline is not None:
        baseline = json.loads(args.baseline.read_text())
        failures = compare(baseline, current, args.tolerance)
        if failures:
            print("REGRESSION:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print(f"ok: within {args.tolerance * 100:.0f}% of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
