"""Figure 6(b): normalised switch count vs. #use-cases for Spread (Sp) benchmarks.

20-core synthetic benchmarks with spread communication; the number of
use-cases sweeps the paper's x-axis.  Points where the WC baseline cannot
produce a valid mapping at all are reported as ``n/a`` (the paper likewise
omits the 40-use-case point for this reason).
"""

from repro.analysis import use_case_count_sweep
from repro.io import format_rows

USE_CASE_COUNTS = (2, 5, 10, 15, 20)


def test_fig6b_spread_benchmarks(benchmark, once):
    rows = once(benchmark, use_case_count_sweep, "spread", USE_CASE_COUNTS)
    print()
    print(format_rows(
        rows,
        columns=["use_cases", "unified_switches", "worst_case_switches",
                 "normalized_switch_count"],
        title="Figure 6(b) — Spread (Sp) benchmarks, 20 cores",
    ))
    assert len(rows) == len(USE_CASE_COUNTS)
    ratios = [row["normalized_switch_count"] for row in rows
              if row["normalized_switch_count"] is not None]
    # The proposed method never needs more switches than the WC baseline and
    # its relative advantage grows (ratio does not increase) with use-cases.
    assert all(ratio <= 1.0 for ratio in ratios)
    assert ratios[-1] <= ratios[0]
