"""Ablation benches for the design choices called out in DESIGN.md.

These do not correspond to a numbered figure; they quantify the individual
ingredients of the methodology (§5): per-use-case resource state vs. one
shared configuration, flow-ordering policy, candidate-path policy and TDMA
slot-table size.
"""

from repro.analysis import (
    ablation_flow_ordering,
    ablation_grouping,
    ablation_routing_policy,
    ablation_slot_table_size,
)
from repro.gen import generate_benchmark
from repro.io import format_rows


def _workload():
    return generate_benchmark("spread", 5, seed=3)


def test_ablation_grouping(benchmark, once):
    rows = once(benchmark, ablation_grouping, _workload())
    print()
    print(format_rows(rows, title="Ablation — per-use-case state vs. single shared configuration"))
    by_label = {row.label: row["switch_count"] for row in rows}
    assert by_label["per-use-case-configuration"] is not None


def test_ablation_flow_ordering(benchmark, once):
    rows = once(benchmark, ablation_flow_ordering, _workload())
    print()
    print(format_rows(rows, title="Ablation — flow ordering (prefer mapped endpoints)"))
    assert len(rows) == 2


def test_ablation_routing_policy(benchmark, once):
    rows = once(benchmark, ablation_routing_policy, _workload())
    print()
    print(format_rows(rows, title="Ablation — candidate-path policy"))
    assert {row.label for row in rows} == {"xy", "west_first", "minimal", "k_shortest"}


def test_ablation_slot_table_size(benchmark, once):
    rows = once(benchmark, ablation_slot_table_size, _workload())
    print()
    print(format_rows(rows, title="Ablation — TDMA slot-table size"))
    assert len(rows) == 4
